//! Certificates, a certifying authority and a verified-certificate cache.
//!
//! The paper's certificate-based baselines (BD with ECDSA / DSA) require
//! each user to ship its certificate in Round 1 and to receive and verify
//! `n − 1` certificates (Table 1). Reconstructing Table 5 shows the paper
//! prices a certificate verification **only the first time a node sees that
//! certificate** (returning members of a Join already trust each other's
//! certificates; the newcomer pays for all of them). [`CertStore`]
//! implements exactly that cache; the protocol layer records a
//! `CertVerify` operation only when [`CertCheck::NewlyVerified`] is
//! returned.
//!
//! Certificate encodings here are honest (length-prefixed TBS bytes, real
//! signatures) but the paper's *printed* sizes — 86-byte ECDSA, 263-byte
//! DSA certificates — are used for energy accounting via
//! `egka_energy::radio::wire`.

use std::collections::HashMap;

use egka_bigint::Ubig;
use egka_ec::Point;
use egka_hash::{Digest, Sha256};
use rand::Rng;

use crate::dsa::{Dsa, DsaKeyPair, DsaSignature};
use crate::ecdsa::{Ecdsa, EcdsaKeyPair, EcdsaSignature};

/// Which certificate-based scheme a credential belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CertScheme {
    /// 1024-bit DSA (263-byte certificates).
    Dsa,
    /// 160-bit ECDSA (86-byte certificates).
    Ecdsa,
}

/// A subject's public key as carried inside a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubjectKey {
    /// DSA public key `y`.
    Dsa(Ubig),
    /// ECDSA public point (affine).
    Ecdsa(Point),
}

impl SubjectKey {
    /// The scheme this key belongs to.
    pub fn scheme(&self) -> CertScheme {
        match self {
            SubjectKey::Dsa(_) => CertScheme::Dsa,
            SubjectKey::Ecdsa(_) => CertScheme::Ecdsa,
        }
    }

    fn encode(&self) -> Vec<u8> {
        match self {
            SubjectKey::Dsa(y) => {
                let mut out = vec![0u8];
                out.extend_from_slice(&y.to_bytes_be());
                out
            }
            SubjectKey::Ecdsa(q) => {
                let mut out = vec![1u8];
                match q.xy() {
                    None => out.push(0),
                    Some((x, y)) => {
                        let xb = x.to_bytes_be();
                        let yb = y.to_bytes_be();
                        out.push(1);
                        out.extend_from_slice(&(xb.len() as u16).to_be_bytes());
                        out.extend_from_slice(&xb);
                        out.extend_from_slice(&(yb.len() as u16).to_be_bytes());
                        out.extend_from_slice(&yb);
                    }
                }
                out
            }
        }
    }
}

/// The CA's signature over a certificate body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaSignature {
    /// DSA-signed certificate.
    Dsa(DsaSignature),
    /// ECDSA-signed certificate.
    Ecdsa(EcdsaSignature),
}

/// A minimal X.509-like certificate binding an identity to a public key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Monotonic serial number assigned by the CA.
    pub serial: u64,
    /// Issuer name.
    pub issuer: Vec<u8>,
    /// Subject identity (the paper's 32-bit `U_i`, as bytes).
    pub subject: Vec<u8>,
    /// Subject public key.
    pub key: SubjectKey,
    /// CA signature over the TBS bytes.
    pub signature: CaSignature,
}

impl Certificate {
    /// The to-be-signed encoding (everything except the signature).
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"egka.cert.v1");
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.extend_from_slice(&(self.issuer.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.issuer);
        out.extend_from_slice(&(self.subject.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.subject);
        out.extend_from_slice(&self.key.encode());
        out
    }

    /// SHA-256 fingerprint over TBS bytes (cache key in [`CertStore`]).
    pub fn fingerprint(&self) -> [u8; 32] {
        let digest = Sha256::digest(&self.tbs_bytes());
        digest.try_into().expect("SHA-256 digests are 32 bytes")
    }

    /// The scheme of the *subject* key (which is also the CA scheme in this
    /// workspace: the DSA CA certifies DSA keys, the ECDSA CA ECDSA keys,
    /// mirroring the paper's two homogeneous baselines).
    pub fn scheme(&self) -> CertScheme {
        self.key.scheme()
    }

    /// Full wire encoding (TBS fields + signature), decodable by
    /// [`Certificate::decode`].
    pub fn encode(&self) -> Vec<u8> {
        fn put(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u16).to_be_bytes());
            out.extend_from_slice(b);
        }
        let mut out = Vec::new();
        out.extend_from_slice(&self.serial.to_be_bytes());
        put(&mut out, &self.issuer);
        put(&mut out, &self.subject);
        match &self.key {
            SubjectKey::Dsa(y) => {
                out.push(0);
                put(&mut out, &y.to_bytes_be());
            }
            SubjectKey::Ecdsa(q) => {
                out.push(1);
                match q.xy() {
                    None => out.push(0),
                    Some((x, y)) => {
                        out.push(1);
                        put(&mut out, &x.to_bytes_be());
                        put(&mut out, &y.to_bytes_be());
                    }
                }
            }
        }
        match &self.signature {
            CaSignature::Dsa(s) => {
                out.push(0);
                put(&mut out, &s.r.to_bytes_be());
                put(&mut out, &s.s.to_bytes_be());
            }
            CaSignature::Ecdsa(s) => {
                out.push(1);
                put(&mut out, &s.r.to_bytes_be());
                put(&mut out, &s.s.to_bytes_be());
            }
        }
        out
    }

    /// Inverse of [`Certificate::encode`]; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Certificate> {
        struct Cur<'a>(&'a [u8], usize);
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Option<&'a [u8]> {
                if self.1 + n > self.0.len() {
                    return None;
                }
                let s = &self.0[self.1..self.1 + n];
                self.1 += n;
                Some(s)
            }
            fn get(&mut self) -> Option<&'a [u8]> {
                let len = self.take(2)?;
                let len = u16::from_be_bytes([len[0], len[1]]) as usize;
                self.take(len)
            }
            fn byte(&mut self) -> Option<u8> {
                Some(self.take(1)?[0])
            }
        }
        let mut c = Cur(buf, 0);
        let serial = u64::from_be_bytes(c.take(8)?.try_into().ok()?);
        let issuer = c.get()?.to_vec();
        let subject = c.get()?.to_vec();
        let key = match c.byte()? {
            0 => SubjectKey::Dsa(Ubig::from_bytes_be(c.get()?)),
            1 => match c.byte()? {
                0 => SubjectKey::Ecdsa(Point::Infinity),
                1 => {
                    let x = Ubig::from_bytes_be(c.get()?);
                    let y = Ubig::from_bytes_be(c.get()?);
                    SubjectKey::Ecdsa(Point::affine(x, y))
                }
                _ => return None,
            },
            _ => return None,
        };
        let signature = match c.byte()? {
            0 => CaSignature::Dsa(DsaSignature {
                r: Ubig::from_bytes_be(c.get()?),
                s: Ubig::from_bytes_be(c.get()?),
            }),
            1 => CaSignature::Ecdsa(EcdsaSignature {
                r: Ubig::from_bytes_be(c.get()?),
                s: Ubig::from_bytes_be(c.get()?),
            }),
            _ => return None,
        };
        if c.1 != buf.len() {
            return None;
        }
        Some(Certificate {
            serial,
            issuer,
            subject,
            key,
            signature,
        })
    }
}

/// A certifying authority issuing certificates under one scheme.
pub struct CertificateAuthority {
    name: Vec<u8>,
    next_serial: u64,
    signer: CaSigner,
}

// Variant sizes differ by scheme; boxing would only obscure the hot path.
#[allow(clippy::large_enum_variant)]
enum CaSigner {
    Dsa { dsa: Dsa, key: DsaKeyPair },
    Ecdsa { ecdsa: Ecdsa, key: EcdsaKeyPair },
}

/// The public half of a CA: what relying parties need to verify certs.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // scheme state is intentionally inline
pub enum CaPublic {
    /// DSA verifier: scheme instance + CA public key.
    Dsa(Dsa, Ubig),
    /// ECDSA verifier: scheme instance + CA public point.
    Ecdsa(Ecdsa, Point),
}

impl CertificateAuthority {
    /// Creates a DSA-signing CA.
    pub fn new_dsa<R: Rng + ?Sized>(rng: &mut R, name: &[u8], dsa: Dsa) -> Self {
        let key = dsa.keygen(rng);
        CertificateAuthority {
            name: name.to_vec(),
            next_serial: 1,
            signer: CaSigner::Dsa { dsa, key },
        }
    }

    /// Creates an ECDSA-signing CA.
    pub fn new_ecdsa<R: Rng + ?Sized>(rng: &mut R, name: &[u8], ecdsa: Ecdsa) -> Self {
        let key = ecdsa.keygen(rng);
        CertificateAuthority {
            name: name.to_vec(),
            next_serial: 1,
            signer: CaSigner::Ecdsa { ecdsa, key },
        }
    }

    /// The verification half handed to every relying node.
    pub fn public(&self) -> CaPublic {
        match &self.signer {
            CaSigner::Dsa { dsa, key } => CaPublic::Dsa(dsa.clone(), key.y.clone()),
            CaSigner::Ecdsa { ecdsa, key } => CaPublic::Ecdsa(ecdsa.clone(), key.q.clone()),
        }
    }

    /// Issues a certificate for `(subject, key)`.
    ///
    /// # Panics
    /// Panics if the subject key's scheme differs from the CA's scheme.
    pub fn issue<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        subject: &[u8],
        key: SubjectKey,
    ) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        let mut cert = Certificate {
            serial,
            issuer: self.name.clone(),
            subject: subject.to_vec(),
            key,
            // placeholder replaced below
            signature: CaSignature::Dsa(DsaSignature {
                r: Ubig::one(),
                s: Ubig::one(),
            }),
        };
        let tbs = cert.tbs_bytes();
        cert.signature = match &self.signer {
            CaSigner::Dsa { dsa, key: ca } => {
                assert_eq!(cert.key.scheme(), CertScheme::Dsa, "mixed-scheme cert");
                CaSignature::Dsa(dsa.sign(rng, ca, &tbs))
            }
            CaSigner::Ecdsa { ecdsa, key: ca } => {
                assert_eq!(cert.key.scheme(), CertScheme::Ecdsa, "mixed-scheme cert");
                CaSignature::Ecdsa(ecdsa.sign(rng, ca, &tbs))
            }
        };
        cert
    }
}

impl CaPublic {
    /// Cryptographically verifies a certificate against this CA key.
    pub fn verify(&self, cert: &Certificate) -> bool {
        let tbs = cert.tbs_bytes();
        match (self, &cert.signature) {
            (CaPublic::Dsa(dsa, y), CaSignature::Dsa(sig)) => dsa.verify(y, &tbs, sig),
            (CaPublic::Ecdsa(ecdsa, q), CaSignature::Ecdsa(sig)) => ecdsa.verify(q, &tbs, sig),
            _ => false,
        }
    }
}

/// Outcome of presenting a certificate to a [`CertStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertCheck {
    /// Previously verified: no cryptographic work done (paper: returning
    /// group members do not re-pay certificate verification).
    AlreadyTrusted,
    /// Verified now: one certificate verification was performed.
    NewlyVerified,
    /// Signature invalid or subject mismatch: rejected.
    Rejected,
}

/// Per-node cache of verified certificates, keyed by fingerprint.
#[derive(Default)]
pub struct CertStore {
    trusted: HashMap<[u8; 32], Certificate>,
}

impl CertStore {
    /// An empty store.
    pub fn new() -> Self {
        CertStore::default()
    }

    /// Number of cached certificates.
    pub fn len(&self) -> usize {
        self.trusted.len()
    }

    /// True when no certificates are cached.
    pub fn is_empty(&self) -> bool {
        self.trusted.is_empty()
    }

    /// Presents `cert` (claimed to belong to `expected_subject`): verifies
    /// it against `ca` unless already cached.
    pub fn check(
        &mut self,
        cert: &Certificate,
        expected_subject: &[u8],
        ca: &CaPublic,
    ) -> CertCheck {
        if cert.subject != expected_subject {
            return CertCheck::Rejected;
        }
        let fp = cert.fingerprint();
        if self.trusted.contains_key(&fp) {
            return CertCheck::AlreadyTrusted;
        }
        if ca.verify(cert) {
            self.trusted.insert(fp, cert.clone());
            CertCheck::NewlyVerified
        } else {
            CertCheck::Rejected
        }
    }

    /// Looks up a cached certificate by subject.
    pub fn by_subject(&self, subject: &[u8]) -> Option<&Certificate> {
        self.trusted.values().find(|c| c.subject == subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    fn ecdsa_ca() -> (CertificateAuthority, Ecdsa) {
        let mut rng = ChaChaRng::seed_from_u64(0xca);
        let ecdsa = Ecdsa::new(egka_ec::secp160r1());
        (
            CertificateAuthority::new_ecdsa(&mut rng, b"egka-ca", ecdsa.clone()),
            ecdsa,
        )
    }

    #[test]
    fn issue_and_verify_ecdsa_cert() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let user = ecdsa.keygen(&mut rng);
        let cert = ca.issue(&mut rng, b"user-1", SubjectKey::Ecdsa(user.q));
        assert!(ca.public().verify(&cert));
        assert_eq!(cert.scheme(), CertScheme::Ecdsa);
    }

    #[test]
    fn issue_and_verify_dsa_cert() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        let dsa = Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 256, 96));
        let mut ca = CertificateAuthority::new_dsa(&mut rng, b"egka-ca", dsa.clone());
        let user = dsa.keygen(&mut rng);
        let cert = ca.issue(&mut rng, b"user-1", SubjectKey::Dsa(user.y));
        assert!(ca.public().verify(&cert));
        assert_eq!(cert.scheme(), CertScheme::Dsa);
    }

    #[test]
    fn tampered_cert_rejected() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let user = ecdsa.keygen(&mut rng);
        let mut cert = ca.issue(&mut rng, b"user-1", SubjectKey::Ecdsa(user.q));
        cert.subject = b"user-2".to_vec(); // rebind to another identity
        assert!(!ca.public().verify(&cert));
    }

    #[test]
    fn store_caches_verifications() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let user = ecdsa.keygen(&mut rng);
        let cert = ca.issue(&mut rng, b"user-1", SubjectKey::Ecdsa(user.q));
        let capub = ca.public();
        let mut store = CertStore::new();
        assert_eq!(
            store.check(&cert, b"user-1", &capub),
            CertCheck::NewlyVerified
        );
        assert_eq!(
            store.check(&cert, b"user-1", &capub),
            CertCheck::AlreadyTrusted
        );
        assert_eq!(store.len(), 1);
        assert!(store.by_subject(b"user-1").is_some());
    }

    #[test]
    fn store_rejects_subject_mismatch() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(5);
        let user = ecdsa.keygen(&mut rng);
        let cert = ca.issue(&mut rng, b"user-1", SubjectKey::Ecdsa(user.q));
        let mut store = CertStore::new();
        assert_eq!(
            store.check(&cert, b"user-2", &ca.public()),
            CertCheck::Rejected
        );
        assert!(store.is_empty());
    }

    #[test]
    fn store_rejects_forged_cert() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(6);
        let user = ecdsa.keygen(&mut rng);
        let mut cert = ca.issue(&mut rng, b"user-1", SubjectKey::Ecdsa(user.q.clone()));
        // Swap in a different key without re-signing.
        let other = ecdsa.keygen(&mut rng);
        cert.key = SubjectKey::Ecdsa(other.q);
        let mut store = CertStore::new();
        assert_eq!(
            store.check(&cert, b"user-1", &ca.public()),
            CertCheck::Rejected
        );
    }

    #[test]
    fn cross_scheme_verification_fails() {
        let mut rng = ChaChaRng::seed_from_u64(7);
        let (mut eca, ecdsa) = ecdsa_ca();
        let dsa = Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 256, 96));
        let dca = CertificateAuthority::new_dsa(&mut rng, b"dsa-ca", dsa);
        let user = ecdsa.keygen(&mut rng);
        let cert = eca.issue(&mut rng, b"u", SubjectKey::Ecdsa(user.q));
        assert!(!dca.public().verify(&cert));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(9);
        let user = ecdsa.keygen(&mut rng);
        let cert = ca.issue(&mut rng, b"user-9", SubjectKey::Ecdsa(user.q));
        let decoded = Certificate::decode(&cert.encode()).expect("roundtrip");
        assert_eq!(decoded, cert);
        assert!(ca.public().verify(&decoded));
    }

    #[test]
    fn decode_rejects_truncated_and_trailing() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(10);
        let user = ecdsa.keygen(&mut rng);
        let cert = ca.issue(&mut rng, b"u", SubjectKey::Ecdsa(user.q));
        let enc = cert.encode();
        assert!(Certificate::decode(&enc[..enc.len() - 1]).is_none());
        let mut padded = enc.clone();
        padded.push(0);
        assert!(Certificate::decode(&padded).is_none());
    }

    #[test]
    fn fingerprints_differ_per_subject() {
        let (mut ca, ecdsa) = ecdsa_ca();
        let mut rng = ChaChaRng::seed_from_u64(8);
        let u1 = ecdsa.keygen(&mut rng);
        let u2 = ecdsa.keygen(&mut rng);
        let c1 = ca.issue(&mut rng, b"u1", SubjectKey::Ecdsa(u1.q));
        let c2 = ca.issue(&mut rng, b"u2", SubjectKey::Ecdsa(u2.q));
        assert_ne!(c1.fingerprint(), c2.fingerprint());
    }
}
