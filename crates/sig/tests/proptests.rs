//! Property tests on the signature schemes: completeness (honest
//! signatures verify) and soundness-in-practice (any tampering with the
//! message, identity or signature components is rejected).

use egka_bigint::Ubig;
use egka_hash::ChaChaRng;
use egka_sig::{Dsa, DsaSignature, Ecdsa, EcdsaSignature, GqPkg, GqSignature};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

fn gq() -> &'static GqPkg {
    static PKG: OnceLock<GqPkg> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x70677131);
        GqPkg::setup_with_e_bits(&mut rng, 128, 41)
    })
}

fn dsa() -> &'static Dsa {
    static D: OnceLock<Dsa> = OnceLock::new();
    D.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x64736131);
        Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 192, 64))
    })
}

fn ecdsa() -> &'static Ecdsa {
    static E: OnceLock<Ecdsa> = OnceLock::new();
    E.get_or_init(|| Ecdsa::new(egka_ec::secp160r1()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gq_complete_and_tamper_evident(
        msg in proptest::collection::vec(any::<u8>(), 0..96),
        tweak in 1u64..u64::MAX,
        seed in any::<u64>(),
    ) {
        let pkg = gq();
        let key = pkg.extract(b"prop-user");
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let sig = pkg.params.sign(&mut rng, &key, &msg);
        prop_assert!(pkg.params.verify(b"prop-user", &msg, &sig));
        // Component tampering.
        let bad_s = GqSignature {
            s: egka_bigint::mod_mul(&sig.s, &Ubig::from_u64(tweak | 2), &pkg.params.n),
            c: sig.c.clone(),
        };
        prop_assert!(!pkg.params.verify(b"prop-user", &msg, &bad_s));
        let bad_c = GqSignature {
            s: sig.s.clone(),
            c: sig.c.add_ref(&Ubig::one()),
        };
        prop_assert!(!pkg.params.verify(b"prop-user", &msg, &bad_c));
    }

    #[test]
    fn gq_aggregate_sound_under_random_corruption(
        n in 2usize..6,
        victim in any::<usize>(),
        factor in 2u64..u64::MAX,
        seed in any::<u64>(),
    ) {
        let pkg = gq();
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let ids: Vec<Vec<u8>> = (0..n).map(|i| format!("agg-{i}").into_bytes()).collect();
        let keys: Vec<_> = ids.iter().map(|id| pkg.extract(id)).collect();
        let mut taus = Vec::new();
        let mut ts = Vec::new();
        for _ in 0..n {
            let (tau, t) = pkg.params.commit(&mut rng);
            taus.push(tau);
            ts.push(t);
        }
        let c = pkg.params.shared_challenge(&pkg.params.aggregate_commitments(&ts), b"bind");
        let mut responses: Vec<Ubig> = keys
            .iter()
            .zip(&taus)
            .map(|(k, tau)| pkg.params.respond(k, tau, &c))
            .collect();
        let id_refs: Vec<&[u8]> = ids.iter().map(|v| v.as_slice()).collect();
        prop_assert!(pkg.params.aggregate_verify(&id_refs, &responses, &c, b"bind"));
        // Corrupt one response by a random factor; must be detected.
        let v = victim % n;
        responses[v] = egka_bigint::mod_mul(&responses[v], &Ubig::from_u64(factor), &pkg.params.n);
        prop_assert!(!pkg.params.aggregate_verify(&id_refs, &responses, &c, b"bind"));
    }

    #[test]
    fn dsa_complete_and_tamper_evident(
        msg in proptest::collection::vec(any::<u8>(), 0..96),
        seed in any::<u64>(),
    ) {
        let d = dsa();
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let kp = d.keygen(&mut rng);
        let sig = d.sign(&mut rng, &kp, &msg);
        prop_assert!(d.verify(&kp.y, &msg, &sig));
        let bad = DsaSignature {
            r: sig.r.clone(),
            s: egka_bigint::mod_add(&sig.s, &Ubig::one(), &d.group().q),
        };
        prop_assert!(!d.verify(&kp.y, &msg, &bad));
    }

    #[test]
    fn ecdsa_complete_and_tamper_evident(
        msg in proptest::collection::vec(any::<u8>(), 0..96),
        seed in any::<u64>(),
    ) {
        let e = ecdsa();
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let kp = e.keygen(&mut rng);
        let sig = e.sign(&mut rng, &kp, &msg);
        prop_assert!(e.verify(&kp.q, &msg, &sig));
        let bad = EcdsaSignature {
            r: egka_bigint::mod_add(&sig.r, &Ubig::one(), e.curve().order()),
            s: sig.s.clone(),
        };
        prop_assert!(!e.verify(&kp.q, &msg, &bad));
    }

    #[test]
    fn certificates_bind_subject_and_key(
        subject in proptest::collection::vec(any::<u8>(), 1..16),
        seed in any::<u64>(),
    ) {
        use egka_sig::{CertificateAuthority, SubjectKey, CertStore, CertCheck};
        let e = ecdsa();
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let mut ca = CertificateAuthority::new_ecdsa(&mut rng, b"prop-ca", e.clone());
        let user = e.keygen(&mut rng);
        let cert = ca.issue(&mut rng, &subject, SubjectKey::Ecdsa(user.q));
        // Round-trips the wire encoding and verifies.
        let decoded = egka_sig::Certificate::decode(&cert.encode()).unwrap();
        prop_assert!(ca.public().verify(&decoded));
        let mut store = CertStore::new();
        prop_assert_eq!(store.check(&decoded, &subject, &ca.public()), CertCheck::NewlyVerified);
        prop_assert_eq!(store.check(&decoded, &subject, &ca.public()), CertCheck::AlreadyTrusted);
        // A different claimed subject is rejected.
        let mut other = subject.clone();
        other[0] ^= 0xff;
        prop_assert_eq!(store.check(&decoded, &other, &ca.public()), CertCheck::Rejected);
    }
}
