//! Low-level limb (u64) primitives: carry/borrow chains and schoolbook cores.
//!
//! Everything here operates on little-endian limb slices. These functions are
//! the hot inner loops of the crate; they are written so LLVM can keep the
//! carry in a register (see the perf-book guidance on hot-loop structure).

/// Number of bits in one limb.
pub const LIMB_BITS: u32 = 64;

/// Adds `rhs` into `acc` in place, returning the final carry.
///
/// `acc` must be at least as long as `rhs`.
#[inline]
pub fn add_assign(acc: &mut [u64], rhs: &[u64]) -> u64 {
    debug_assert!(acc.len() >= rhs.len());
    let mut carry = 0u64;
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        let (s1, c1) = a.overflowing_add(b);
        let (s2, c2) = s1.overflowing_add(carry);
        *a = s2;
        carry = u64::from(c1) + u64::from(c2);
    }
    if carry != 0 {
        for a in acc.iter_mut().skip(rhs.len()) {
            let (s, c) = a.overflowing_add(carry);
            *a = s;
            carry = u64::from(c);
            if carry == 0 {
                break;
            }
        }
    }
    carry
}

/// Subtracts `rhs` from `acc` in place, returning the final borrow.
///
/// `acc` must be at least as long as `rhs`. A non-zero return value means the
/// subtraction underflowed (caller bug for normalized big integers).
#[inline]
pub fn sub_assign(acc: &mut [u64], rhs: &[u64]) -> u64 {
    debug_assert!(acc.len() >= rhs.len());
    let mut borrow = 0u64;
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        let (d1, b1) = a.overflowing_sub(b);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *a = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    if borrow != 0 {
        for a in acc.iter_mut().skip(rhs.len()) {
            let (d, b) = a.overflowing_sub(borrow);
            *a = d;
            borrow = u64::from(b);
            if borrow == 0 {
                break;
            }
        }
    }
    borrow
}

/// Computes `acc += a * b` where `b` is a single limb, returning the carry.
///
/// `acc` must be at least as long as `a`.
#[inline]
pub fn mul_add_assign(acc: &mut [u64], a: &[u64], b: u64) -> u64 {
    debug_assert!(acc.len() >= a.len());
    let mut carry = 0u64;
    for (dst, &x) in acc.iter_mut().zip(a.iter()) {
        let t = (x as u128) * (b as u128) + (*dst as u128) + (carry as u128);
        *dst = t as u64;
        carry = (t >> 64) as u64;
    }
    if carry != 0 {
        for dst in acc.iter_mut().skip(a.len()) {
            let (s, c) = dst.overflowing_add(carry);
            *dst = s;
            carry = u64::from(c);
            if carry == 0 {
                break;
            }
        }
    }
    carry
}

/// Schoolbook multiplication: `out = a * b`.
///
/// `out` must be zeroed and exactly `a.len() + b.len()` limbs long.
pub fn mul_schoolbook(out: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    debug_assert!(out.iter().all(|&l| l == 0));
    for (i, &bi) in b.iter().enumerate() {
        if bi == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &aj) in a.iter().enumerate() {
            let t = (aj as u128) * (bi as u128) + (out[i + j] as u128) + (carry as u128);
            out[i + j] = t as u64;
            carry = (t >> 64) as u64;
        }
        out[i + a.len()] = carry;
    }
}

/// Compares two normalized limb slices.
#[inline]
pub fn cmp(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    use core::cmp::Ordering;
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {}
        other => return other,
    }
    for (&x, &y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(&y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Shifts `limbs` left by `sh` bits (`sh < 64`), returning the spill-over.
#[inline]
pub fn shl_small(limbs: &mut [u64], sh: u32) -> u64 {
    debug_assert!(sh < LIMB_BITS);
    if sh == 0 {
        return 0;
    }
    let mut carry = 0u64;
    for l in limbs.iter_mut() {
        let next = *l >> (LIMB_BITS - sh);
        *l = (*l << sh) | carry;
        carry = next;
    }
    carry
}

/// Shifts `limbs` right by `sh` bits (`sh < 64`).
#[inline]
pub fn shr_small(limbs: &mut [u64], sh: u32) {
    debug_assert!(sh < LIMB_BITS);
    if sh == 0 {
        return;
    }
    let mut carry = 0u64;
    for l in limbs.iter_mut().rev() {
        let next = *l << (LIMB_BITS - sh);
        *l = (*l >> sh) | carry;
        carry = next;
    }
}

/// Strips trailing (most-significant) zero limbs, returning the normalized
/// length.
#[inline]
pub fn normalized_len(limbs: &[u64]) -> usize {
    let mut n = limbs.len();
    while n > 0 && limbs[n - 1] == 0 {
        n -= 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_carries_across_limbs() {
        let mut acc = vec![u64::MAX, u64::MAX, 0];
        let carry = add_assign(&mut acc, &[1]);
        assert_eq!(carry, 0);
        assert_eq!(acc, vec![0, 0, 1]);
    }

    #[test]
    fn add_assign_returns_final_carry() {
        let mut acc = vec![u64::MAX];
        let carry = add_assign(&mut acc, &[1]);
        assert_eq!(carry, 1);
        assert_eq!(acc, vec![0]);
    }

    #[test]
    fn sub_assign_borrows_across_limbs() {
        let mut acc = vec![0, 0, 1];
        let borrow = sub_assign(&mut acc, &[1]);
        assert_eq!(borrow, 0);
        assert_eq!(acc, vec![u64::MAX, u64::MAX, 0]);
    }

    #[test]
    fn sub_assign_underflow_reports_borrow() {
        let mut acc = vec![0];
        let borrow = sub_assign(&mut acc, &[1]);
        assert_eq!(borrow, 1);
    }

    #[test]
    fn mul_schoolbook_simple() {
        let mut out = vec![0u64; 2];
        mul_schoolbook(&mut out, &[u64::MAX], &[u64::MAX]);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(out, vec![1, u64::MAX - 1]);
    }

    #[test]
    fn shl_shr_roundtrip() {
        let mut v = vec![0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef];
        let orig = v.clone();
        let spill = shl_small(&mut v, 13);
        let mut w = vec![v[0], v[1], spill];
        shr_small(&mut w, 13);
        assert_eq!(&w[..2], &orig[..]);
    }

    #[test]
    fn cmp_orders_by_length_then_lexicographic() {
        use core::cmp::Ordering;
        assert_eq!(cmp(&[1, 2], &[5]), Ordering::Greater);
        assert_eq!(cmp(&[1, 2], &[2, 2]), Ordering::Less);
        assert_eq!(cmp(&[7, 9], &[7, 9]), Ordering::Equal);
    }
}
