//! Montgomery-form modular arithmetic for odd moduli.
//!
//! All 1024-bit exponentiations in the GKA protocols go through
//! [`Montgomery::pow`], so this module is the single hottest code path in the
//! workspace. The REDC inner loop is written over flat limb buffers that are
//! reused across iterations (perf-book: avoid allocation in hot loops).

use crate::limbs;
use crate::ubig::Ubig;

/// Precomputed Montgomery context for an odd modulus `n`.
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: Ubig,
    /// limb count of `n`
    k: usize,
    /// `-n^{-1} mod 2^64`
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64k)`
    r2: Ubig,
    /// `R mod n` (the Montgomery form of 1)
    r1: Ubig,
}

/// A value held in Montgomery form (`a * R mod n`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontForm {
    pub(crate) limbs: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for odd modulus `n > 1`.
    ///
    /// # Panics
    /// Panics if `n` is even or `n <= 1`.
    pub fn new(n: Ubig) -> Self {
        assert!(n.is_odd(), "Montgomery requires an odd modulus");
        assert!(!n.is_one(), "modulus must be > 1");
        let k = n.limbs().len();
        let n0inv = inv64(n.limbs()[0]).wrapping_neg();
        // R mod n and R^2 mod n via shifting.
        let r1 = Ubig::one().shl_bits(64 * k as u32).rem_ref(&n);
        let r2 = Ubig::one().shl_bits(128 * k as u32).rem_ref(&n);
        Montgomery {
            n,
            k,
            n0inv,
            r2,
            r1,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Converts `a` (must satisfy `a < n`) into Montgomery form.
    pub fn to_mont(&self, a: &Ubig) -> MontForm {
        debug_assert!(a < &self.n);
        self.mul(&self.form_from_ubig(a), &self.form_from_ubig(&self.r2))
    }

    /// Converts back from Montgomery form.
    pub fn from_mont(&self, a: &MontForm) -> Ubig {
        let mut t = vec![0u64; 2 * self.k + 1];
        t[..self.k].copy_from_slice(&a.limbs);
        self.redc(&mut t)
    }

    /// Montgomery form of 1.
    pub fn one(&self) -> MontForm {
        self.form_from_ubig(&self.r1)
    }

    fn form_from_ubig(&self, a: &Ubig) -> MontForm {
        let mut l = vec![0u64; self.k];
        l[..a.limbs().len()].copy_from_slice(a.limbs());
        MontForm { limbs: l }
    }

    /// Montgomery product: `redc(a * b)`.
    pub fn mul(&self, a: &MontForm, b: &MontForm) -> MontForm {
        let mut t = vec![0u64; 2 * self.k + 1];
        limbs::mul_schoolbook(&mut t[..2 * self.k], &a.limbs, &b.limbs);
        let r = self.redc(&mut t);
        self.form_from_ubig(&r)
    }

    /// Montgomery square.
    pub fn sqr(&self, a: &MontForm) -> MontForm {
        self.mul(a, a)
    }

    /// REDC: given `t < n * R` (as `2k+1` limbs), returns `t * R^{-1} mod n`.
    fn redc(&self, t: &mut [u64]) -> Ubig {
        let k = self.k;
        let n = self.n.limbs();
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0inv);
            // t += m * n << (64*i)
            let carry = limbs::mul_add_assign(&mut t[i..], n, m);
            debug_assert_eq!(carry, 0, "t buffer sized to absorb all carries");
        }
        let mut r = Ubig::from_limbs(t[k..].to_vec());
        if r >= self.n {
            r = r.checked_sub(&self.n).unwrap();
        }
        r
    }

    /// `base^e mod n` using a fixed 4-bit window.
    ///
    /// `base` must already be reduced (`base < n`).
    pub fn pow(&self, base: &Ubig, e: &Ubig) -> Ubig {
        if e.is_zero() {
            return Ubig::one().rem_ref(&self.n);
        }
        let bm = self.to_mont(base);
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one());
        for i in 1..16 {
            let prev: &MontForm = &table[i - 1];
            table.push(self.mul(prev, &bm));
        }
        let bits = e.bit_length();
        let mut acc = self.one();
        let mut started = false;
        // Process 4-bit windows from the most significant end. Squarings are
        // skipped until the first non-zero window (acc is still 1 there).
        let top_window = bits.div_ceil(4);
        for w in (0..top_window).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.sqr(&acc);
                }
            }
            let mut nibble = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + b;
                if bit_idx < bits && e.bit(bit_idx) {
                    nibble |= 1 << b;
                }
            }
            if nibble != 0 {
                acc = self.mul(&acc, &table[nibble]);
                started = true;
            }
        }
        debug_assert!(started, "non-zero exponent must set a window");
        self.from_mont(&acc)
    }
}

/// Inverse of an odd `x` modulo 2^64 by Newton–Hensel lifting.
fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    // Each iteration doubles the number of correct low bits.
    let mut inv = x; // correct mod 2^3 already after first iterations below
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mod_pow;

    #[test]
    fn inv64_is_inverse() {
        for x in [1u64, 3, 5, 0xdead_beef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv64(x)), 1, "x = {x}");
        }
    }

    #[test]
    fn roundtrip_mont_form() {
        let n = Ubig::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let m = Montgomery::new(n.clone());
        let a = Ubig::from_hex("123456789abcdef0123456789abcdef").unwrap();
        assert_eq!(m.from_mont(&m.to_mont(&a)), a);
    }

    #[test]
    fn mont_mul_matches_plain() {
        let n = Ubig::from_hex("f0000000000000000000000000000001").unwrap();
        let m = Montgomery::new(n.clone());
        let a = Ubig::from_hex("deadbeefcafebabe").unwrap();
        let b = Ubig::from_hex("0123456789abcdef0011223344556677").unwrap();
        let am = m.to_mont(&a);
        let bm = m.to_mont(&b.rem_ref(&n));
        let prod = m.from_mont(&m.mul(&am, &bm));
        assert_eq!(prod, crate::modular::mod_mul(&a, &b, &n));
    }

    #[test]
    fn pow_matches_small_modulus() {
        let n = Ubig::from_u64(1000003); // odd prime
        let m = Montgomery::new(n.clone());
        let base = Ubig::from_u64(123456);
        let e = Ubig::from_u64(789);
        let expect = {
            // plain repeated multiplication
            let mut acc = Ubig::one();
            for _ in 0..789 {
                acc = crate::modular::mod_mul(&acc, &base, &n);
            }
            acc
        };
        assert_eq!(m.pow(&base, &e), expect);
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let n = Ubig::from_u64(9973);
        let m = Montgomery::new(n);
        assert_eq!(m.pow(&Ubig::from_u64(5), &Ubig::zero()), Ubig::one());
    }

    #[test]
    fn pow_large_modulus_consistency() {
        // mod_pow dispatches to Montgomery; cross-check against the even-path
        // implementation by lifting to an even modulus identity:
        // a^e mod n computed two ways.
        let n = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
            .unwrap();
        let n = if n.is_even() {
            n.add_ref(&Ubig::one())
        } else {
            n
        };
        let a = Ubig::from_hex("aabbccddeeff00112233445566778899").unwrap();
        let e = Ubig::from_u64(65537);
        let fast = mod_pow(&a, &e, &n);
        // square-and-multiply reference
        let mut acc = Ubig::one();
        for i in (0..e.bit_length()).rev() {
            acc = crate::modular::mod_mul(&acc, &acc, &n);
            if e.bit(i) {
                acc = crate::modular::mod_mul(&acc, &a, &n);
            }
        }
        assert_eq!(fast, acc);
    }
}
