//! Modular arithmetic on [`Ubig`]: add/sub/mul/pow mod m, gcd, inverse,
//! Jacobi symbol.

use crate::ubig::Ubig;

/// `(a + b) mod m`. Operands need not be reduced.
pub fn mod_add(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    (a.add_ref(b)).rem_ref(m)
}

/// `(a - b) mod m`. Operands need not be reduced.
pub fn mod_sub(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    let a = a.rem_ref(m);
    let b = b.rem_ref(m);
    if a >= b {
        a.checked_sub(&b).unwrap()
    } else {
        m.checked_sub(&b).unwrap().add_ref(&a)
    }
}

/// `(a * b) mod m`.
pub fn mod_mul(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    a.mul_ref(b).rem_ref(m)
}

/// `a^e mod m`.
///
/// Dispatches to Montgomery exponentiation for odd moduli (the common case
/// throughout this workspace), reusing interned contexts from
/// [`crate::fixed::mont_ctx`], and falls back to binary square-and-multiply
/// with explicit reductions for even moduli.
///
/// # Panics
/// Panics if `m` is zero or one.
pub fn mod_pow(a: &Ubig, e: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero() && !m.is_one(), "modulus must be > 1");
    if e.is_zero() {
        return Ubig::one();
    }
    if m.is_odd() {
        return crate::fixed::mont_ctx(m).pow(&a.rem_ref(m), e);
    }
    // Even modulus: plain left-to-right square-and-multiply.
    let mut base = a.rem_ref(m);
    let mut acc = Ubig::one();
    for i in (0..e.bit_length()).rev() {
        acc = mod_mul(&acc, &acc, m);
        if e.bit(i) {
            acc = mod_mul(&acc, &base, m);
        }
    }
    let _ = &mut base;
    acc
}

/// Greatest common divisor (binary GCD).
pub fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let az = a.trailing_zeros().unwrap();
    let bz = b.trailing_zeros().unwrap();
    let common = az.min(bz);
    a = a.shr_bits(az);
    b = b.shr_bits(bz);
    // Both odd from here on.
    loop {
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b = b.checked_sub(&a).unwrap();
        if b.is_zero() {
            return a.shl_bits(common);
        }
        b = b.shr_bits(b.trailing_zeros().unwrap());
    }
}

/// A signed magnitude pair used internally by the extended Euclid loop.
#[derive(Clone)]
struct Signed {
    negative: bool,
    mag: Ubig,
}

impl Signed {
    fn from_ubig(mag: Ubig) -> Self {
        Signed {
            negative: false,
            mag,
        }
    }

    /// `self - q * other`.
    fn sub_mul(&self, q: &Ubig, other: &Signed) -> Signed {
        let prod = q.mul_ref(&other.mag);
        if self.negative == other.negative {
            // same sign: magnitudes subtract
            if self.mag >= prod {
                Signed {
                    negative: self.negative && (self.mag != prod),
                    mag: self.mag.checked_sub(&prod).unwrap(),
                }
            } else {
                Signed {
                    negative: !self.negative,
                    mag: prod.checked_sub(&self.mag).unwrap(),
                }
            }
        } else {
            // opposite sign: magnitudes add, sign follows self
            Signed {
                negative: self.negative,
                mag: self.mag.add_ref(&prod),
            }
        }
    }
}

/// Extended Euclid: returns `(g, x)` with `a*x ≡ g (mod m)` where
/// `g = gcd(a, m)` and `0 <= x < m`.
pub fn ext_gcd_mod(a: &Ubig, m: &Ubig) -> (Ubig, Ubig) {
    assert!(!m.is_zero(), "modulus must be non-zero");
    let mut old_r = a.rem_ref(m);
    let mut r = m.clone();
    let mut old_s = Signed::from_ubig(Ubig::one());
    let mut s = Signed::from_ubig(Ubig::zero());
    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        let new_s = old_s.sub_mul(&q, &s);
        old_r = core::mem::replace(&mut r, rem);
        old_s = core::mem::replace(&mut s, new_s);
    }
    // old_s may be negative or >= m; normalize into [0, m).
    let coeff = if old_s.negative {
        let red = old_s.mag.rem_ref(m);
        if red.is_zero() {
            red
        } else {
            m.checked_sub(&red).unwrap()
        }
    } else {
        old_s.mag.rem_ref(m)
    };
    (old_r, coeff)
}

/// Modular inverse: `a^-1 mod m`, or `None` when `gcd(a, m) != 1`.
pub fn mod_inverse(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    let (g, x) = ext_gcd_mod(a, m);
    if g.is_one() {
        Some(x)
    } else {
        None
    }
}

/// Jacobi symbol `(a/n)` for odd `n > 0`. Returns -1, 0 or 1.
///
/// # Panics
/// Panics if `n` is even or zero.
pub fn jacobi(a: &Ubig, n: &Ubig) -> i32 {
    assert!(n.is_odd(), "Jacobi symbol requires odd n");
    let mut a = a.rem_ref(n);
    let mut n = n.clone();
    let mut result = 1i32;
    while !a.is_zero() {
        let tz = a.trailing_zeros().unwrap();
        if tz % 2 == 1 {
            let n_mod8 = n.low_u64() & 7;
            if n_mod8 == 3 || n_mod8 == 5 {
                result = -result;
            }
        }
        a = a.shr_bits(tz);
        // quadratic reciprocity flip
        if (a.low_u64() & 3 == 3) && (n.low_u64() & 3 == 3) {
            result = -result;
        }
        core::mem::swap(&mut a, &mut n);
        a = a.rem_ref(&n);
    }
    if n.is_one() {
        result
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from_u64(v)
    }

    #[test]
    fn mod_add_wraps() {
        assert_eq!(mod_add(&u(7), &u(8), &u(10)), u(5));
    }

    #[test]
    fn mod_sub_handles_underflow() {
        assert_eq!(mod_sub(&u(3), &u(8), &u(10)), u(5));
        assert_eq!(mod_sub(&u(8), &u(3), &u(10)), u(5));
    }

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(mod_pow(&u(2), &u(10), &u(1000)), u(24));
        assert_eq!(mod_pow(&u(3), &u(0), &u(7)), u(1));
        assert_eq!(mod_pow(&u(0), &u(5), &u(7)), u(0));
    }

    #[test]
    fn mod_pow_even_modulus() {
        // 3^5 = 243 = 243 mod 1024
        assert_eq!(mod_pow(&u(3), &u(5), &u(1024)), u(243));
    }

    #[test]
    fn mod_pow_fermat() {
        // Fermat's little theorem with a 61-bit prime.
        let p = u(2305843009213693951); // 2^61 - 1, prime
        let a = u(1234567890123456789);
        let e = p.checked_sub(&u(1)).unwrap();
        assert_eq!(mod_pow(&a, &e, &p), u(1));
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(&u(48), &u(36)), u(12));
        assert_eq!(gcd(&u(17), &u(5)), u(1));
        assert_eq!(gcd(&u(0), &u(9)), u(9));
        assert_eq!(gcd(&u(9), &u(0)), u(9));
    }

    #[test]
    fn inverse_times_self_is_one() {
        let m = u(2305843009213693951);
        let a = u(987654321987654321);
        let inv = mod_inverse(&a, &m).unwrap();
        assert_eq!(mod_mul(&a, &inv, &m), u(1));
    }

    #[test]
    fn inverse_of_non_coprime_is_none() {
        assert!(mod_inverse(&u(6), &u(9)).is_none());
    }

    #[test]
    fn inverse_large() {
        let m = Ubig::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff").unwrap();
        let a = Ubig::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        if let Some(inv) = mod_inverse(&a, &m) {
            assert_eq!(mod_mul(&a, &inv, &m), Ubig::one());
        }
    }

    #[test]
    fn jacobi_matches_legendre_for_prime() {
        // p = 23; quadratic residues mod 23: {1,2,3,4,6,8,9,12,13,16,18}
        let p = u(23);
        let qr = [1u64, 2, 3, 4, 6, 8, 9, 12, 13, 16, 18];
        for a in 1..23u64 {
            let expected = if qr.contains(&a) { 1 } else { -1 };
            assert_eq!(jacobi(&u(a), &p), expected, "a = {a}");
        }
        assert_eq!(jacobi(&u(0), &p), 0);
        assert_eq!(jacobi(&u(23), &p), 0);
    }
}
