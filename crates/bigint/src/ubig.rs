//! [`Ubig`]: an arbitrary-precision unsigned integer.
//!
//! Representation: little-endian `Vec<u64>` limbs with no most-significant
//! zero limbs (zero is the empty vector). All arithmetic is by-reference to
//! avoid accidental clones in hot paths; operator impls for owned values
//! forward to the reference versions.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, BitAnd, Mul, Rem, Shl, Shr, Sub};

use crate::limbs;

/// Arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs, normalized (no trailing zero limbs).
    pub(crate) limbs: Vec<u64>,
}

impl Ubig {
    /// The value 0.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut u = Ubig {
            limbs: vec![lo, hi],
        };
        u.normalize();
        u
    }

    /// Builds from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut u = Ubig { limbs };
        u.normalize();
        u
    }

    /// Exposes the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_length(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u32 - 1) * limbs::LIMB_BITS + (64 - top.leading_zeros())
            }
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / limbs::LIMB_BITS) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % limbs::LIMB_BITS)) & 1 == 1
    }

    /// Sets bit `i` to 1, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: u32) {
        let limb = (i / limbs::LIMB_BITS) as usize;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % limbs::LIMB_BITS);
    }

    /// Number of trailing zero bits; `None` for the value 0.
    pub fn trailing_zeros(&self) -> Option<u32> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u32 * limbs::LIMB_BITS + l.trailing_zeros());
            }
        }
        None
    }

    /// Truncates to a `u64` (low limb).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    pub(crate) fn normalize(&mut self) {
        let n = limbs::normalized_len(&self.limbs);
        self.limbs.truncate(n);
    }

    // ----- arithmetic cores (by reference) -----

    /// `self + rhs`.
    pub fn add_ref(&self, rhs: &Ubig) -> Ubig {
        let (big, small) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = big.limbs.clone();
        let carry = limbs::add_assign(&mut out, &small.limbs);
        if carry != 0 {
            out.push(carry);
        }
        Ubig { limbs: out }
    }

    /// `self - rhs`, or `None` if it would underflow.
    pub fn checked_sub(&self, rhs: &Ubig) -> Option<Ubig> {
        if self < rhs {
            return None;
        }
        let mut out = self.limbs.clone();
        let borrow = limbs::sub_assign(&mut out, &rhs.limbs);
        debug_assert_eq!(borrow, 0);
        let mut r = Ubig { limbs: out };
        r.normalize();
        Some(r)
    }

    /// `self * rhs` (schoolbook below the Karatsuba threshold).
    pub fn mul_ref(&self, rhs: &Ubig) -> Ubig {
        if self.is_zero() || rhs.is_zero() {
            return Ubig::zero();
        }
        const KARATSUBA_THRESHOLD: usize = 32;
        if self.limbs.len() >= KARATSUBA_THRESHOLD && rhs.limbs.len() >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(rhs);
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        limbs::mul_schoolbook(&mut out, &self.limbs, &rhs.limbs);
        Ubig::from_limbs(out)
    }

    /// Karatsuba multiplication for large operands.
    fn mul_karatsuba(&self, rhs: &Ubig) -> Ubig {
        let half = self.limbs.len().min(rhs.limbs.len()) / 2;
        let (a0, a1) = self.split_at_limb(half);
        let (b0, b1) = rhs.split_at_limb(half);
        let z0 = a0.mul_ref(&b0);
        let z2 = a1.mul_ref(&b1);
        let z1 = a0.add_ref(&a1).mul_ref(&b0.add_ref(&b1));
        // z1 - z0 - z2 >= 0 always
        let mid = z1
            .checked_sub(&z0)
            .and_then(|t| t.checked_sub(&z2))
            .expect("karatsuba middle term underflow");
        let mut acc = z0;
        acc = acc.add_ref(&mid.shl_limbs(half));
        acc.add_ref(&z2.shl_limbs(2 * half))
    }

    fn split_at_limb(&self, k: usize) -> (Ubig, Ubig) {
        if k >= self.limbs.len() {
            return (self.clone(), Ubig::zero());
        }
        (
            Ubig::from_limbs(self.limbs[..k].to_vec()),
            Ubig::from_limbs(self.limbs[k..].to_vec()),
        )
    }

    fn shl_limbs(&self, k: usize) -> Ubig {
        if self.is_zero() {
            return Ubig::zero();
        }
        let mut out = vec![0u64; k + self.limbs.len()];
        out[k..].copy_from_slice(&self.limbs);
        Ubig { limbs: out }
    }

    /// `self²` — currently forwards to multiplication.
    pub fn square(&self) -> Ubig {
        self.mul_ref(self)
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        crate::div::div_rem(self, divisor)
    }

    /// `self mod m`.
    pub fn rem_ref(&self, m: &Ubig) -> Ubig {
        self.div_rem(m).1
    }

    /// Left shift by an arbitrary number of bits.
    pub fn shl_bits(&self, sh: u32) -> Ubig {
        if self.is_zero() || sh == 0 {
            let c = self.clone();
            if sh > 0 && !c.is_zero() {
                // unreachable; kept for clarity
            }
            return c;
        }
        let limb_shift = (sh / limbs::LIMB_BITS) as usize;
        let bit_shift = sh % limbs::LIMB_BITS;
        let mut out = vec![0u64; limb_shift + self.limbs.len() + 1];
        out[limb_shift..limb_shift + self.limbs.len()].copy_from_slice(&self.limbs);
        if bit_shift > 0 {
            let spill = limbs::shl_small(&mut out[limb_shift..], bit_shift);
            debug_assert_eq!(spill, 0, "reserved limb absorbs the spill");
        }
        Ubig::from_limbs(out)
    }

    /// Right shift by an arbitrary number of bits.
    pub fn shr_bits(&self, sh: u32) -> Ubig {
        let limb_shift = (sh / limbs::LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let bit_shift = sh % limbs::LIMB_BITS;
        let mut out = self.limbs[limb_shift..].to_vec();
        limbs::shr_small(&mut out, bit_shift);
        Ubig::from_limbs(out)
    }

    /// Bitwise AND.
    pub fn bitand_ref(&self, rhs: &Ubig) -> Ubig {
        let n = self.limbs.len().min(rhs.limbs.len());
        let out: Vec<u64> = self.limbs[..n]
            .iter()
            .zip(&rhs.limbs[..n])
            .map(|(a, b)| a & b)
            .collect();
        Ubig::from_limbs(out)
    }

    // ----- conversions -----

    /// Parses a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> Ubig {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Ubig::from_limbs(limbs)
    }

    /// Serializes to minimal-length big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to exactly `width` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    /// Panics if the value does not fit in `width` bytes.
    pub fn to_bytes_be_padded(&self, width: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= width,
            "value needs {} bytes, field is {} bytes",
            raw.len(),
            width
        );
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hex string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Ubig, ParseUbigError> {
        if s.is_empty() {
            return Err(ParseUbigError::Empty);
        }
        let mut limbs = Vec::with_capacity(s.len().div_ceil(16));
        let bytes = s.as_bytes();
        let mut i = bytes.len();
        while i > 0 {
            let start = i.saturating_sub(16);
            let mut limb = 0u64;
            for &c in &bytes[start..i] {
                let d = (c as char)
                    .to_digit(16)
                    .ok_or(ParseUbigError::InvalidDigit(c as char))?;
                limb = (limb << 4) | d as u64;
            }
            limbs.push(limb);
            i = start;
        }
        Ok(Ubig::from_limbs(limbs))
    }

    /// Lower-case hex rendering without a prefix (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Result<Ubig, ParseUbigError> {
        if s.is_empty() {
            return Err(ParseUbigError::Empty);
        }
        let mut acc = Ubig::zero();
        let ten_pow_19 = Ubig::from_u64(10u64.pow(19));
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 19).min(bytes.len());
            let chunk = &s[i..end];
            let v: u64 = chunk
                .parse()
                .map_err(|_| ParseUbigError::InvalidDigit(chunk.chars().next().unwrap_or('?')))?;
            let scale = if end - i == 19 {
                ten_pow_19.clone()
            } else {
                Ubig::from_u64(10u64.pow((end - i) as u32))
            };
            acc = acc.mul_ref(&scale).add_ref(&Ubig::from_u64(v));
            i = end;
        }
        Ok(acc)
    }

    /// Decimal rendering.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let ten_pow_19 = Ubig::from_u64(10u64.pow(19));
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&ten_pow_19);
            chunks.push(r.low_u64());
            cur = q;
        }
        let mut s = format!("{}", chunks.last().unwrap());
        for &c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        s
    }
}

/// Error parsing a [`Ubig`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseUbigError {
    /// The input string was empty.
    Empty,
    /// The input contained a character that is not a digit in the base.
    InvalidDigit(char),
}

impl fmt::Display for ParseUbigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUbigError::Empty => write!(f, "empty integer literal"),
            ParseUbigError::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseUbigError {}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        limbs::cmp(&self.limbs, &other.limbs)
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig(0x{})", self.to_hex())
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        Ubig::from_u64(v)
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from_u64(v as u64)
    }
}

// Operator impls: reference versions are primary.
impl Add for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: &Ubig) -> Ubig {
        self.add_ref(rhs)
    }
}
impl Add for Ubig {
    type Output = Ubig;
    fn add(self, rhs: Ubig) -> Ubig {
        self.add_ref(&rhs)
    }
}
impl Sub for &Ubig {
    type Output = Ubig;
    fn sub(self, rhs: &Ubig) -> Ubig {
        self.checked_sub(rhs).expect("Ubig subtraction underflow")
    }
}
impl Sub for Ubig {
    type Output = Ubig;
    fn sub(self, rhs: Ubig) -> Ubig {
        (&self) - (&rhs)
    }
}
impl Mul for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: &Ubig) -> Ubig {
        self.mul_ref(rhs)
    }
}
impl Mul for Ubig {
    type Output = Ubig;
    fn mul(self, rhs: Ubig) -> Ubig {
        self.mul_ref(&rhs)
    }
}
impl Rem for &Ubig {
    type Output = Ubig;
    fn rem(self, rhs: &Ubig) -> Ubig {
        self.rem_ref(rhs)
    }
}
impl Shl<u32> for &Ubig {
    type Output = Ubig;
    fn shl(self, sh: u32) -> Ubig {
        self.shl_bits(sh)
    }
}
impl Shr<u32> for &Ubig {
    type Output = Ubig;
    fn shr(self, sh: u32) -> Ubig {
        self.shr_bits(sh)
    }
}
impl BitAnd for &Ubig {
    type Output = Ubig;
    fn bitand(self, rhs: &Ubig) -> Ubig {
        self.bitand_ref(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from_u64(v)
    }

    #[test]
    fn zero_is_normalized_empty() {
        assert!(Ubig::zero().is_zero());
        assert_eq!(Ubig::from_limbs(vec![0, 0, 0]), Ubig::zero());
    }

    #[test]
    fn add_sub_roundtrip_small() {
        let a = u(123456789);
        let b = u(987654321);
        assert_eq!((&(&a + &b) - &b), a);
    }

    #[test]
    fn mul_known_value() {
        let a = Ubig::from_hex("ffffffffffffffff").unwrap();
        let sq = a.square();
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // 40-limb operands exceed the Karatsuba threshold.
        let a = Ubig::from_limbs(
            (1..=40u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
                .collect(),
        );
        let b = Ubig::from_limbs(
            (1..=40u64)
                .map(|i| i.wrapping_mul(0xc2b2ae3d27d4eb4f))
                .collect(),
        );
        let kara = a.mul_karatsuba(&b);
        let mut out = vec![0u64; a.limbs.len() + b.limbs.len()];
        limbs::mul_schoolbook(&mut out, &a.limbs, &b.limbs);
        assert_eq!(kara, Ubig::from_limbs(out));
    }

    #[test]
    fn hex_roundtrip() {
        let s = "deadbeefcafef00d0123456789abcdef00000000ffffffff";
        let v = Ubig::from_hex(s).unwrap();
        assert_eq!(v.to_hex(), s);
    }

    #[test]
    fn hex_rejects_invalid() {
        assert!(Ubig::from_hex("xyz").is_err());
        assert!(Ubig::from_hex("").is_err());
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789012345678901234567890123456789012345678901234567890";
        let v = Ubig::from_decimal(s).unwrap();
        assert_eq!(v.to_decimal(), s);
    }

    #[test]
    fn bytes_be_roundtrip() {
        let v = Ubig::from_hex("0102030405060708090a0b0c0d0e0f").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(bytes.len(), 15);
        assert_eq!(Ubig::from_bytes_be(&bytes), v);
    }

    #[test]
    fn padded_bytes() {
        let v = u(0xabcd);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0xab, 0xcd]);
    }

    #[test]
    #[should_panic(expected = "value needs")]
    fn padded_bytes_overflow_panics() {
        u(0x1_0000).to_bytes_be_padded(2);
    }

    #[test]
    fn bit_length_and_bits() {
        let v = Ubig::from_hex("8000000000000000").unwrap(); // 2^63
        assert_eq!(v.bit_length(), 64);
        assert!(v.bit(63));
        assert!(!v.bit(62));
        assert_eq!(u(0).bit_length(), 0);
    }

    #[test]
    fn set_bit_grows() {
        let mut v = Ubig::zero();
        v.set_bit(130);
        assert_eq!(v.bit_length(), 131);
        assert!(v.bit(130));
    }

    #[test]
    fn shifts() {
        let v = u(1);
        let big = v.shl_bits(1000);
        assert_eq!(big.bit_length(), 1001);
        assert_eq!(big.shr_bits(1000), u(1));
        assert_eq!(big.shr_bits(1001), Ubig::zero());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(u(0).trailing_zeros(), None);
        assert_eq!(u(8).trailing_zeros(), Some(3));
        assert_eq!(u(1).shl_bits(200).trailing_zeros(), Some(200));
    }

    #[test]
    fn checked_sub_underflow() {
        assert!(u(3).checked_sub(&u(5)).is_none());
        assert_eq!(u(5).checked_sub(&u(3)), Some(u(2)));
    }

    #[test]
    fn ordering() {
        assert!(u(3) < u(5));
        assert!(Ubig::from_hex("10000000000000000").unwrap() > u(u64::MAX));
    }
}
