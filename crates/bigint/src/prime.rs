//! Primality testing and prime/group generation.
//!
//! Provides Miller–Rabin with small-prime trial division, plus the two
//! parameter generators the paper's protocols need:
//!
//! * [`gen_prime`] — a random prime of a given bit length (used pairwise for
//!   the GQ modulus `n = p'q'`), with a crossbeam-parallel search variant.
//! * [`gen_schnorr_group`] — primes `(p, q)` with `q | p - 1` and a generator
//!   `g` of the order-`q` subgroup of `Z_p^*` (the BD group).

use rand::Rng;

use crate::modular::{mod_mul, mod_pow};
use crate::rng::{random_below, random_bits};
use crate::ubig::Ubig;

/// Primes below 1000, used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 168] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Number of Miller–Rabin rounds. 40 random bases push the error probability
/// below 2^-80 for any candidate size used in this workspace.
const MR_ROUNDS: u32 = 40;

/// Probabilistic primality test (trial division + Miller–Rabin).
pub fn is_prime<R: Rng + ?Sized>(n: &Ubig, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if let Some(small) = n.to_u64() {
        if SMALL_PRIMES.contains(&small) {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES[1..] {
        let pu = Ubig::from_u64(p);
        if &pu >= n {
            break;
        }
        if n.rem_ref(&pu).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and > 3.
fn miller_rabin<R: Rng + ?Sized>(n: &Ubig, rounds: u32, rng: &mut R) -> bool {
    let one = Ubig::one();
    let two = Ubig::from_u64(2);
    let n_minus_1 = n.checked_sub(&one).unwrap();
    let s = n_minus_1.trailing_zeros().unwrap();
    let d = n_minus_1.shr_bits(s);

    'witness: for _ in 0..rounds {
        // base in [2, n-2]
        let a = random_below(rng, &n_minus_1.checked_sub(&two).unwrap()).add_ref(&two);
        let mut x = mod_pow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = mod_mul(&x, &x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` bits (top two bits set, so
/// products of two such primes have exactly `2*bits` bits).
///
/// # Panics
/// Panics if `bits < 3`.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Ubig {
    assert!(bits >= 3, "prime needs at least 3 bits");
    loop {
        let mut cand = random_bits(rng, bits);
        cand.set_bit(0); // odd
        if bits >= 2 {
            cand.set_bit(bits - 2); // top-two-bits-set convention
        }
        if is_prime(&cand, rng) {
            return cand;
        }
    }
}

/// Parallel prime search across `threads` crossbeam-scoped workers, each with
/// an RNG forked from `seed_rng`. Returns the first prime found.
///
/// With T workers the expected wall-clock is ~1/T of the sequential search
/// (candidate tests are embarrassingly parallel).
pub fn gen_prime_parallel<R: Rng + ?Sized>(seed_rng: &mut R, bits: u32, threads: usize) -> Ubig {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::mpsc;

    assert!(threads >= 1);
    if threads == 1 {
        return gen_prime(seed_rng, bits);
    }
    let seeds: Vec<u64> = (0..threads).map(|_| seed_rng.next_u64()).collect();
    let found = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Ubig>();

    crossbeam::scope(|scope| {
        for seed in seeds {
            let tx = tx.clone();
            let found = &found;
            scope.spawn(move |_| {
                use rand::rngs::SmallRng;
                use rand::SeedableRng;
                let mut rng = SmallRng::seed_from_u64(seed);
                while !found.load(Ordering::Relaxed) {
                    let mut cand = random_bits(&mut rng, bits);
                    cand.set_bit(0);
                    if bits >= 2 {
                        cand.set_bit(bits - 2);
                    }
                    if is_prime(&cand, &mut rng) {
                        found.store(true, Ordering::Relaxed);
                        let _ = tx.send(cand);
                        return;
                    }
                }
            });
        }
        drop(tx);
    })
    .expect("prime search worker panicked");

    rx.recv().expect("at least one worker finds a prime")
}

/// A Schnorr group: primes `p` (modulus) and `q` (subgroup order) with
/// `q | p - 1`, and a generator `g` of the order-`q` subgroup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchnorrGroup {
    /// Large prime modulus (paper: 1024-bit).
    pub p: Ubig,
    /// Prime subgroup order (paper: 160-bit).
    pub q: Ubig,
    /// Generator of the order-`q` subgroup of `Z_p^*`.
    pub g: Ubig,
}

impl SchnorrGroup {
    /// Checks the defining invariants (primality probabilistic).
    pub fn validate<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let p_minus_1 = self.p.checked_sub(&Ubig::one()).unwrap();
        is_prime(&self.p, rng)
            && is_prime(&self.q, rng)
            && p_minus_1.rem_ref(&self.q).is_zero()
            && !self.g.is_one()
            && mod_pow(&self.g, &self.q, &self.p).is_one()
    }
}

/// Generates a Schnorr group with `p_bits`-bit `p` and `q_bits`-bit `q`
/// (paper: 1024 / 160).
pub fn gen_schnorr_group<R: Rng + ?Sized>(rng: &mut R, p_bits: u32, q_bits: u32) -> SchnorrGroup {
    assert!(p_bits > q_bits + 1, "p must be much larger than q");
    let q = gen_prime(rng, q_bits);
    let one = Ubig::one();
    loop {
        // p = q * k + 1 with k random of the right size and even (so p is odd).
        let mut k = random_bits(rng, p_bits - q_bits);
        if k.is_odd() {
            k = k.add_ref(&one);
        }
        let p = q.mul_ref(&k).add_ref(&one);
        if p.bit_length() != p_bits || !is_prime(&p, rng) {
            continue;
        }
        // g = h^((p-1)/q) for random h; retry until g != 1.
        let p_minus_1 = p.checked_sub(&one).unwrap();
        let exp = p_minus_1.div_rem(&q).0;
        loop {
            let h = random_below(rng, &p_minus_1);
            if h.is_zero() || h.is_one() {
                continue;
            }
            let g = mod_pow(&h, &exp, &p);
            if !g.is_one() {
                return SchnorrGroup { p, q, g };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_recognized() {
        let mut rng = SmallRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 97, 997] {
            assert!(is_prime(&Ubig::from_u64(p), &mut rng), "{p}");
        }
        for c in [0u64, 1, 4, 9, 15, 91, 561, 1001] {
            assert!(!is_prime(&Ubig::from_u64(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut rng = SmallRng::seed_from_u64(2);
        // 561, 1105, 1729, 2465, 2821, 6601 are Carmichael numbers.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_prime(&Ubig::from_u64(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn mersenne_prime_accepted() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m61 = Ubig::from_u64((1u64 << 61) - 1);
        assert!(is_prime(&m61, &mut rng));
    }

    #[test]
    fn known_large_prime() {
        let mut rng = SmallRng::seed_from_u64(4);
        // 2^127 - 1 is a Mersenne prime.
        let p = Ubig::one().shl_bits(127).checked_sub(&Ubig::one()).unwrap();
        assert!(is_prime(&p, &mut rng));
        // 2^128 - 1 = 3 * 5 * 17 * ... is composite.
        let c = Ubig::one().shl_bits(128).checked_sub(&Ubig::one()).unwrap();
        assert!(!is_prime(&c, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut rng = SmallRng::seed_from_u64(5);
        let p = gen_prime(&mut rng, 96);
        assert_eq!(p.bit_length(), 96);
        assert!(is_prime(&p, &mut rng));
    }

    #[test]
    fn gen_prime_parallel_finds_prime() {
        let mut rng = SmallRng::seed_from_u64(6);
        let p = gen_prime_parallel(&mut rng, 128, 4);
        assert_eq!(p.bit_length(), 128);
        assert!(is_prime(&p, &mut rng));
    }

    #[test]
    fn schnorr_group_validates() {
        let mut rng = SmallRng::seed_from_u64(7);
        let grp = gen_schnorr_group(&mut rng, 256, 96);
        assert!(grp.validate(&mut rng));
        assert_eq!(grp.p.bit_length(), 256);
        assert_eq!(grp.q.bit_length(), 96);
    }
}
