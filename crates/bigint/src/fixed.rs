//! Fixed-base precomputation: shared Montgomery contexts and Lim–Lee
//! comb tables for repeated exponentiation of the same base.
//!
//! Two observations drive this module. First, [`Montgomery::new`] costs
//! two full-width divisions (`R mod n`, `R² mod n`), and the protocols
//! exponentiate under a handful of long-lived moduli (the BD prime `p`,
//! the DSA prime, the GQ ring `n`) thousands of times — so contexts are
//! interned in a bounded global cache ([`mont_ctx`]). Second, most of
//! those exponentiations share one *base* too (the group generator
//! `g`), which a Lim–Lee comb turns from `≈ bits` squarings + `bits/4`
//! multiplies into `bits/TEETH` of each ([`FixedBase`], [`mod_pow_fixed`]):
//! a ≥4× saving at 1024-bit sizes on top of the shared context.
//!
//! Both caches are keyed by value (limb vectors), so distinct `Ubig`
//! instances of the same modulus/base share entries; both are bounded
//! and flush wholesale when full, which keeps transient moduli (e.g.
//! Miller–Rabin candidates during group generation) from pinning memory.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::mont::{MontForm, Montgomery};
use crate::ubig::Ubig;

/// Comb teeth: exponent bits are split into this many interleaved rows.
const TEETH: u32 = 8;

/// Bound on cached Montgomery contexts (flush-on-full).
const CTX_CAP: usize = 64;

/// Bound on cached fixed-base tables (flush-on-full).
const FIXED_CAP: usize = 32;

fn ctx_cache() -> &'static Mutex<HashMap<Vec<u64>, Arc<Montgomery>>> {
    static CACHE: OnceLock<Mutex<HashMap<Vec<u64>, Arc<Montgomery>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

type FixedKey = (Vec<u64>, Vec<u64>, u32);

fn fixed_cache() -> &'static Mutex<HashMap<FixedKey, Arc<FixedBase>>> {
    static CACHE: OnceLock<Mutex<HashMap<FixedKey, Arc<FixedBase>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The interned Montgomery context for odd modulus `m > 1`.
///
/// Contexts are built outside the cache lock, so two threads racing on a
/// new modulus may both build one; the loser's build is discarded.
///
/// # Panics
/// Panics if `m` is even or `m <= 1` (the [`Montgomery::new`] contract).
pub fn mont_ctx(m: &Ubig) -> Arc<Montgomery> {
    let key = m.limbs().to_vec();
    if let Some(ctx) = ctx_cache().lock().unwrap().get(&key) {
        return Arc::clone(ctx);
    }
    let ctx = Arc::new(Montgomery::new(m.clone()));
    let mut cache = ctx_cache().lock().unwrap();
    if cache.len() >= CTX_CAP {
        cache.clear();
    }
    Arc::clone(cache.entry(key).or_insert(ctx))
}

/// A Lim–Lee fixed-base comb over one `(base, modulus)` pair, sized for
/// exponents of up to `cap_bits` bits.
///
/// The exponent is viewed as `TEETH` (8) rows of `cols` bits;
/// `table[t - 1] = base^(Σ_{j ∈ t} 2^{j·cols})` for every non-empty
/// tooth subset `t`. Evaluation walks the columns MSB-first: one
/// squaring plus at most one table multiply per column —
/// `cols = ⌈cap_bits/TEETH⌉` of each, instead of `bits` squarings.
///
/// Sizing the comb to the *exponent* capacity matters: BD and DSA
/// exponentiate a 1024-bit generator by `q`-sized (~160-bit) exponents,
/// so a modulus-sized comb would waste 6× the column walk.
#[derive(Debug)]
pub struct FixedBase {
    ctx: Arc<Montgomery>,
    cols: u32,
    table: Vec<MontForm>,
}

impl FixedBase {
    /// Precomputes the comb for `base` under `ctx`'s modulus, for
    /// exponents up to `cap_bits` bits (longer ones fall back).
    pub fn new(base: &Ubig, ctx: Arc<Montgomery>, cap_bits: u32) -> Self {
        let cols = cap_bits.max(1).div_ceil(TEETH);
        // powers[j] = base^(2^(j·cols)) in Montgomery form.
        let mut powers = Vec::with_capacity(TEETH as usize);
        powers.push(ctx.to_mont(&base.rem_ref(ctx.modulus())));
        for j in 1..TEETH as usize {
            let mut p = powers[j - 1].clone();
            for _ in 0..cols {
                p = ctx.sqr(&p);
            }
            powers.push(p);
        }
        // table[t-1] = Π_{j: bit j of t} powers[j], built by splitting off
        // the lowest tooth so each entry costs one multiply.
        let mut table = Vec::with_capacity((1usize << TEETH) - 1);
        for t in 1usize..(1 << TEETH) {
            let low = t.trailing_zeros() as usize;
            let rest = t & (t - 1);
            let entry = if rest == 0 {
                powers[low].clone()
            } else {
                ctx.mul(&table[rest - 1], &powers[low])
            };
            table.push(entry);
        }
        FixedBase { ctx, cols, table }
    }

    /// `base^e mod m` via the comb. Falls back to the generic window
    /// method when `e` overflows the comb's `TEETH · cols` bit capacity
    /// (exponents in this workspace are reduced below the modulus, so
    /// the fallback never fires on protocol paths).
    pub fn pow(&self, e: &Ubig) -> Ubig {
        if e.is_zero() {
            return Ubig::one();
        }
        if e.bit_length() > TEETH * self.cols {
            let base = self.ctx.from_mont(&self.table[0]);
            return self.ctx.pow(&base, e);
        }
        let mut acc: Option<MontForm> = None;
        for col in (0..self.cols).rev() {
            if let Some(a) = acc.as_mut() {
                *a = self.ctx.sqr(a);
            }
            let mut t = 0usize;
            for j in 0..TEETH {
                if e.bit(j * self.cols + col) {
                    t |= 1 << j;
                }
            }
            if t != 0 {
                acc = Some(match acc {
                    Some(a) => self.ctx.mul(&a, &self.table[t - 1]),
                    None => self.table[t - 1].clone(),
                });
            }
        }
        let acc = acc.expect("non-zero exponent sets at least one column");
        self.ctx.from_mont(&acc)
    }

    /// The modulus this comb reduces under.
    pub fn modulus(&self) -> &Ubig {
        self.ctx.modulus()
    }
}

/// The interned comb for `(base, m)` sized for `cap_bits`-bit exponents;
/// builds (and caches) on first use.
///
/// # Panics
/// Panics if `m` is even or `m <= 1`.
pub fn fixed_base(base: &Ubig, m: &Ubig, cap_bits: u32) -> Arc<FixedBase> {
    let cap_bits = cap_bits.max(1);
    let key = (m.limbs().to_vec(), base.limbs().to_vec(), cap_bits);
    if let Some(fb) = fixed_cache().lock().unwrap().get(&key) {
        return Arc::clone(fb);
    }
    let fb = Arc::new(FixedBase::new(base, mont_ctx(m), cap_bits));
    let mut cache = fixed_cache().lock().unwrap();
    if cache.len() >= FIXED_CAP {
        cache.clear();
    }
    Arc::clone(cache.entry(key).or_insert(fb))
}

/// `base^e mod m` through the fixed-base comb cache — a drop-in for
/// [`crate::mod_pow`] at call sites whose base recurs (generators).
/// Even moduli fall back to the generic path.
///
/// The comb capacity is bucketed to the next multiple of 64 bits above
/// `e.bit_length()`, so exponents of similar size (e.g. everything below
/// a subgroup order `q`) share one table and short exponents never pay
/// for a modulus-sized column walk.
///
/// # Panics
/// Panics if `m` is zero or one.
pub fn mod_pow_fixed(base: &Ubig, e: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero() && !m.is_one(), "modulus must be > 1");
    if m.is_even() {
        return crate::modular::mod_pow(base, e, m);
    }
    let bucket = e.bit_length().div_ceil(64).max(1) * 64;
    fixed_base(base, m, bucket).pow(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mod_pow;

    fn u(v: u64) -> Ubig {
        Ubig::from_u64(v)
    }

    #[test]
    fn comb_matches_mod_pow_small() {
        let m = u(1_000_003);
        for base in [0u64, 1, 2, 123_456, 999_999] {
            for e in [0u64, 1, 2, 3, 788, 789, 1_000_002] {
                assert_eq!(
                    mod_pow_fixed(&u(base), &u(e), &m),
                    mod_pow(&u(base), &u(e), &m),
                    "base {base} e {e}"
                );
            }
        }
    }

    #[test]
    fn comb_matches_mod_pow_large() {
        let m = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
            .unwrap(); // odd
        let base = Ubig::from_hex("aabbccddeeff00112233445566778899").unwrap();
        for e in [
            Ubig::from_u64(65_537),
            Ubig::from_hex("ffffffffffffffffffffffffffffffff").unwrap(),
            m.checked_sub(&Ubig::one()).unwrap(),
        ] {
            assert_eq!(mod_pow_fixed(&base, &e, &m), mod_pow(&base, &e, &m));
        }
    }

    #[test]
    fn oversized_exponent_falls_back() {
        let m = u(9973);
        let fb = fixed_base(&u(5), &m, 64);
        let e = Ubig::one().shl_bits(TEETH * fb.cols + 3);
        assert_eq!(fb.pow(&e), mod_pow(&u(5), &e, &m));
    }

    #[test]
    fn even_modulus_falls_back() {
        assert_eq!(mod_pow_fixed(&u(3), &u(5), &u(1024)), u(243));
    }

    #[test]
    fn contexts_are_shared() {
        let m = u(1_000_003);
        let a = mont_ctx(&m);
        let b = mont_ctx(&Ubig::from_u64(1_000_003));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn combs_are_shared_per_base() {
        let m = u(1_000_003);
        let a = fixed_base(&u(7), &m, 64);
        let b = fixed_base(&u(7), &m, 64);
        let c = fixed_base(&u(8), &m, 64);
        let d = fixed_base(&u(7), &m, 128);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn short_exponent_bucket_matches_long() {
        // The same (base, m) queried with a 60-bit then a 160-bit exponent
        // uses two differently-sized combs; both must agree with mod_pow.
        let m = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
            .unwrap();
        let base = u(2);
        let short = Ubig::from_hex("fedcba987654321").unwrap();
        let long = Ubig::from_hex("ffeeddccbbaa99887766554433221100aabbccdd").unwrap();
        assert_eq!(mod_pow_fixed(&base, &short, &m), mod_pow(&base, &short, &m));
        assert_eq!(mod_pow_fixed(&base, &long, &m), mod_pow(&base, &long, &m));
    }
}
