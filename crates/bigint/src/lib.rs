//! # egka-bigint
//!
//! From-scratch arbitrary-precision unsigned integer arithmetic for the
//! `egka` reproduction of Tan & Teo, *"Energy-Efficient ID-based Group Key
//! Agreement Protocols for Wireless Networks"* (IPPS 2006).
//!
//! The paper's protocols live in two algebraic settings, both built on this
//! crate:
//!
//! * the Burmester–Desmedt group: the order-`q` subgroup of `Z_p^*`
//!   (1024-bit `p`, 160-bit `q`) — see [`prime::SchnorrGroup`];
//! * the GQ signature ring `Z_n` for an RSA modulus `n = p'q'`
//!   (512-bit prime factors) — see [`mont::Montgomery`].
//!
//! ## Layout
//!
//! * [`ubig`] — the [`Ubig`] integer type (limb vector, schoolbook +
//!   Karatsuba multiplication, conversions).
//! * [`div`] — Knuth Algorithm D division.
//! * [`modular`] — modular add/sub/mul/pow, gcd, inverse, Jacobi symbol.
//! * [`mont`] — Montgomery contexts (the hot path for all exponentiation).
//! * [`fixed`] — interned Montgomery contexts and Lim–Lee fixed-base combs
//!   for generators exponentiated under a long-lived modulus.
//! * [`prime`] — Miller–Rabin, sequential & crossbeam-parallel prime search,
//!   Schnorr-group generation.
//! * [`rng`] — uniform sampling helpers over any [`rand::Rng`].
//!
//! ```
//! use egka_bigint::{mod_pow, Ubig};
//!
//! // Fermat's little theorem: a^(p-1) ≡ 1 (mod p) for prime p.
//! let (a, p) = (Ubig::from(7u64), Ubig::from(101u64));
//! let e = Ubig::from(100u64);
//! assert_eq!(mod_pow(&a, &e, &p), Ubig::from(1u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod div;
pub mod fixed;
pub mod limbs;
pub mod modular;
pub mod mont;
pub mod prime;
pub mod rng;
pub mod ubig;

pub use fixed::{fixed_base, mod_pow_fixed, mont_ctx, FixedBase};
pub use modular::{ext_gcd_mod, gcd, jacobi, mod_add, mod_inverse, mod_mul, mod_pow, mod_sub};
pub use mont::{MontForm, Montgomery};
pub use prime::{gen_prime, gen_prime_parallel, gen_schnorr_group, is_prime, SchnorrGroup};
pub use rng::{random_below, random_bits, random_range, random_unit};
pub use ubig::{ParseUbigError, Ubig};
