//! Uniform random sampling of [`Ubig`] values via any [`rand::Rng`].

use rand::Rng;

use crate::ubig::Ubig;

/// Samples a uniform integer with exactly `bits` significant bits
/// (the top bit is forced to 1).
///
/// # Panics
/// Panics if `bits == 0`.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Ubig {
    assert!(bits > 0, "cannot sample a 0-bit integer");
    let limb_count = bits.div_ceil(64) as usize;
    let mut limbs = vec![0u64; limb_count];
    for l in limbs.iter_mut() {
        *l = rng.next_u64();
    }
    let top_bits = bits % 64;
    if top_bits != 0 {
        limbs[limb_count - 1] &= (1u64 << top_bits) - 1;
    }
    let mut v = Ubig::from_limbs(limbs);
    v.set_bit(bits - 1);
    v
}

/// Samples uniformly from `[0, bound)` by rejection.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Ubig) -> Ubig {
    assert!(!bound.is_zero(), "empty sampling range");
    let bits = bound.bit_length();
    let limb_count = bits.div_ceil(64) as usize;
    let top_bits = bits % 64;
    loop {
        let mut limbs = vec![0u64; limb_count];
        for l in limbs.iter_mut() {
            *l = rng.next_u64();
        }
        if top_bits != 0 {
            limbs[limb_count - 1] &= (1u64 << top_bits) - 1;
        }
        let v = Ubig::from_limbs(limbs);
        if &v < bound {
            return v;
        }
    }
}

/// Samples uniformly from `[lo, hi)`.
///
/// # Panics
/// Panics if `lo >= hi`.
pub fn random_range<R: Rng + ?Sized>(rng: &mut R, lo: &Ubig, hi: &Ubig) -> Ubig {
    let width = hi.checked_sub(lo).expect("random_range requires lo < hi");
    assert!(!width.is_zero(), "random_range requires lo < hi");
    random_below(rng, &width).add_ref(lo)
}

/// Samples a uniform element of `Z_m^*` (non-zero, coprime to `m`).
///
/// For prime or RSA-composite `m` the expected number of rejections is ~1.
pub fn random_unit<R: Rng + ?Sized>(rng: &mut R, m: &Ubig) -> Ubig {
    loop {
        let v = random_below(rng, m);
        if v.is_zero() {
            continue;
        }
        if crate::modular::gcd(&v, m).is_one() {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = SmallRng::seed_from_u64(42);
        for bits in [1u32, 2, 63, 64, 65, 160, 512, 1024] {
            let v = random_bits(&mut rng, bits);
            assert_eq!(v.bit_length(), bits, "bits = {bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let bound = Ubig::from_u64(1000);
        for _ in 0..200 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        let lo = Ubig::from_u64(100);
        let hi = Ubig::from_u64(110);
        for _ in 0..100 {
            let v = random_range(&mut rng, &lo, &hi);
            assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn random_unit_is_coprime() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = Ubig::from_u64(2 * 3 * 5 * 7 * 11 * 13);
        for _ in 0..50 {
            let v = random_unit(&mut rng, &m);
            assert!(crate::modular::gcd(&v, &m).is_one());
        }
    }
}
