//! Multi-precision division (Knuth TAOCP vol. 2, Algorithm D).

use crate::limbs;
use crate::ubig::Ubig;

/// Divides `u` by `v`, returning `(quotient, remainder)`.
///
/// # Panics
/// Panics if `v` is zero.
pub fn div_rem(u: &Ubig, v: &Ubig) -> (Ubig, Ubig) {
    assert!(!v.is_zero(), "division by zero");
    if u < v {
        return (Ubig::zero(), u.clone());
    }
    if v.limbs().len() == 1 {
        let (q, r) = div_rem_by_limb(u.limbs(), v.limbs()[0]);
        return (Ubig::from_limbs(q), Ubig::from_u64(r));
    }
    div_rem_knuth(u, v)
}

/// Fast path: divisor fits in a single limb.
fn div_rem_by_limb(u: &[u64], v: u64) -> (Vec<u64>, u64) {
    let mut q = vec![0u64; u.len()];
    let mut rem = 0u64;
    for i in (0..u.len()).rev() {
        let cur = ((rem as u128) << 64) | u[i] as u128;
        q[i] = (cur / v as u128) as u64;
        rem = (cur % v as u128) as u64;
    }
    (q, rem)
}

/// Knuth Algorithm D for divisors of two or more limbs.
fn div_rem_knuth(u: &Ubig, v: &Ubig) -> (Ubig, Ubig) {
    let n = v.limbs().len();
    let m = u.limbs().len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs()[n - 1].leading_zeros();
    let mut vn = v.limbs().to_vec();
    limbs::shl_small(&mut vn, shift);
    let mut un = u.limbs().to_vec();
    un.push(0);
    let spill = limbs::shl_small(&mut un, shift);
    debug_assert_eq!(spill, 0);

    let mut q = vec![0u64; m + 1];
    let b = 1u128 << 64;

    // D2-D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two dividend limbs.
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vn[n - 1] as u128;
        let mut rhat = top % vn[n - 1] as u128;
        while qhat >= b || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >= b {
                break;
            }
        }

        // D4: multiply and subtract: un[j..j+n+1] -= qhat * vn.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
            un[i + j] = t as u64;
            borrow = i128::from(t < 0);
        }
        let t = un[j + n] as i128 - carry as i128 - borrow;
        un[j + n] = t as u64;

        if t < 0 {
            // D6: estimate was one too large; add the divisor back.
            qhat -= 1;
            let carry = limbs::add_assign(&mut un[j..j + n + 1], &vn);
            debug_assert_eq!(carry, 1, "add-back must overflow into the borrowed bit");
            // the carry cancels the negative top limb: drop it.
            let _ = carry;
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    un.truncate(n);
    limbs::shr_small(&mut un, shift);
    (Ubig::from_limbs(q), Ubig::from_limbs(un))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> Ubig {
        Ubig::from_hex(s).unwrap()
    }

    #[test]
    fn divide_by_one_limb() {
        let u = h("123456789abcdef0123456789abcdef");
        let (q, r) = div_rem(&u, &Ubig::from_u64(0x10));
        assert_eq!(q, h("123456789abcdef0123456789abcde"));
        assert_eq!(r, Ubig::from_u64(0xf));
    }

    #[test]
    fn small_over_large_is_zero() {
        let (q, r) = div_rem(&Ubig::from_u64(5), &h("ffffffffffffffffffffffffffffffff"));
        assert!(q.is_zero());
        assert_eq!(r, Ubig::from_u64(5));
    }

    #[test]
    fn reconstruction_identity() {
        let u = h("fedcba9876543210fedcba9876543210fedcba9876543210");
        let v = h("123456789abcdef123456789");
        let (q, r) = div_rem(&u, &v);
        assert!(r < v);
        assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    fn exact_division() {
        let v = h("deadbeefcafebabe1234567890abcdef");
        let q_expect = h("1000000000000001");
        let u = &v * &q_expect;
        let (q, r) = div_rem(&u, &v);
        assert_eq!(q, q_expect);
        assert!(r.is_zero());
    }

    #[test]
    fn triggers_qhat_correction() {
        // Crafted so the initial qhat estimate is too large (Knuth's D6 path):
        // top limbs of dividend equal the divisor's top limb.
        let u = Ubig::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let v = Ubig::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = div_rem(&u, &v);
        assert!(r < v);
        assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div_rem(&Ubig::from_u64(1), &Ubig::zero());
    }
}
