//! Property-based tests for the bigint substrate: ring laws, division
//! identity, modular-arithmetic identities and Montgomery/plain agreement.

use egka_bigint::{gcd, mod_inverse, mod_mul, mod_pow, Montgomery, Ubig};
use proptest::prelude::*;

/// Strategy: a Ubig with up to `max_limbs` random limbs.
fn ubig(max_limbs: usize) -> impl Strategy<Value = Ubig> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(Ubig::from_limbs)
}

/// Strategy: a non-zero Ubig.
fn ubig_nonzero(max_limbs: usize) -> impl Strategy<Value = Ubig> {
    ubig(max_limbs).prop_filter("non-zero", |v| !v.is_zero())
}

/// Strategy: an odd Ubig > 1 (valid Montgomery modulus).
fn ubig_odd_modulus(max_limbs: usize) -> impl Strategy<Value = Ubig> {
    ubig_nonzero(max_limbs).prop_map(|mut v| {
        if v.is_even() {
            v = v.add_ref(&Ubig::one());
        }
        if v.is_one() {
            v = v.add_ref(&Ubig::from_u64(2));
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutative(a in ubig(8), b in ubig(8)) {
        prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
    }

    #[test]
    fn add_associative(a in ubig(6), b in ubig(6), c in ubig(6)) {
        prop_assert_eq!(a.add_ref(&b).add_ref(&c), a.add_ref(&b.add_ref(&c)));
    }

    #[test]
    fn add_sub_roundtrip(a in ubig(8), b in ubig(8)) {
        let sum = a.add_ref(&b);
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn mul_commutative(a in ubig(8), b in ubig(8)) {
        prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in ubig(5), b in ubig(5), c in ubig(5)) {
        let lhs = a.mul_ref(&b.add_ref(&c));
        let rhs = a.mul_ref(&b).add_ref(&a.mul_ref(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn karatsuba_threshold_agreement(a in ubig(40), b in ubig(40)) {
        // mul_ref dispatches by size; verify against the naive O(n^2)
        // accumulation done limb-by-limb through shifted adds.
        let mut acc = Ubig::zero();
        for (i, &limb) in b.limbs().iter().enumerate() {
            let part = a.mul_ref(&Ubig::from_u64(limb)).shl_bits(64 * i as u32);
            acc = acc.add_ref(&part);
        }
        prop_assert_eq!(a.mul_ref(&b), acc);
    }

    #[test]
    fn division_identity(a in ubig(12), b in ubig_nonzero(6)) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    fn shl_shr_roundtrip(a in ubig(8), sh in 0u32..512) {
        prop_assert_eq!(a.shl_bits(sh).shr_bits(sh), a);
    }

    #[test]
    fn hex_roundtrip(a in ubig(8)) {
        prop_assert_eq!(Ubig::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in ubig(6)) {
        prop_assert_eq!(Ubig::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in ubig(8)) {
        prop_assert_eq!(Ubig::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(5), b in ubig_nonzero(5)) {
        let g = gcd(&a, &b);
        prop_assert!(a.rem_ref(&g).is_zero());
        prop_assert!(b.rem_ref(&g).is_zero());
    }

    #[test]
    fn gcd_commutative(a in ubig(5), b in ubig(5)) {
        prop_assert_eq!(gcd(&a, &b), gcd(&b, &a));
    }

    #[test]
    fn mod_pow_exponent_addition(
        a in ubig(4),
        e1 in 0u64..2000,
        e2 in 0u64..2000,
        m in ubig_odd_modulus(4),
    ) {
        let lhs = mod_pow(&a, &Ubig::from_u64(e1 + e2), &m);
        let rhs = mod_mul(
            &mod_pow(&a, &Ubig::from_u64(e1), &m),
            &mod_pow(&a, &Ubig::from_u64(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn montgomery_matches_square_and_multiply(
        a in ubig(4),
        e in 0u64..5000,
        m in ubig_odd_modulus(4),
    ) {
        let fast = mod_pow(&a, &Ubig::from_u64(e), &m);
        // reference: binary square-and-multiply with explicit reductions
        let mut acc = Ubig::one().rem_ref(&m);
        let base = a.rem_ref(&m);
        let eb = Ubig::from_u64(e);
        for i in (0..eb.bit_length()).rev() {
            acc = mod_mul(&acc, &acc, &m);
            if eb.bit(i) {
                acc = mod_mul(&acc, &base, &m);
            }
        }
        prop_assert_eq!(fast, acc);
    }

    #[test]
    fn montgomery_mul_matches_plain(a in ubig(6), b in ubig(6), m in ubig_odd_modulus(6)) {
        let ctx = Montgomery::new(m.clone());
        let ra = a.rem_ref(&m);
        let rb = b.rem_ref(&m);
        let fast = ctx.from_mont(&ctx.mul(&ctx.to_mont(&ra), &ctx.to_mont(&rb)));
        prop_assert_eq!(fast, mod_mul(&ra, &rb, &m));
    }

    #[test]
    fn inverse_is_inverse(a in ubig_nonzero(5), m in ubig_odd_modulus(5)) {
        if let Some(inv) = mod_inverse(&a, &m) {
            prop_assert_eq!(mod_mul(&a, &inv, &m), Ubig::one().rem_ref(&m));
            prop_assert!(inv < m);
        } else {
            prop_assert!(!gcd(&a, &m).is_one());
        }
    }
}
