//! Computational energy cost model — the paper's Table 2.
//!
//! The paper measures modular exponentiation on the 133 MHz StrongARM
//! SA-1110 (9.1 mJ at 240 mW, hence 37.92 ms, from Carman et al.) and takes
//! every other primitive's timing from the MIRACL library on a Pentium III
//! 450 MHz, extrapolating to the StrongARM with
//!
//! ```text
//! α = (γ ms / 8.8 ms) × 37.92 ms        (paper eq. (4))
//! β = 240 mW × α
//! ```
//!
//! The constants below are the paper's *printed* values (canonical for the
//! reproduction); [`CpuModel::derive_strongarm`] re-derives them from the
//! P3-450 column and tests assert agreement to within the paper's own
//! rounding (≤ 0.5 %; the paper's Tate-pairing energy row is internally
//! inconsistent by ~2 % — see `EXPERIMENTS.md`).

use serde::{Deserialize, Serialize};

use crate::ops::{CompOp, Scheme};

/// StrongARM SA-1110 power draw in milliwatts (paper §6).
pub const STRONGARM_POWER_MW: f64 = 240.0;
/// Reference modular-exponentiation timing on the P3-450 (MIRACL).
pub const P3_450_MODEXP_MS: f64 = 8.8;
/// Reference modular-exponentiation timing on the StrongARM.
pub const STRONGARM_MODEXP_MS: f64 = 37.92;
/// Scale factor from Pentium III 1 GHz timings down to the P3-450.
pub const P3_1GHZ_TO_450_SCALE: f64 = 1000.0 / 450.0;

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostRow {
    /// Energy on the 133 MHz StrongARM, millijoules.
    pub strongarm_mj: f64,
    /// Time on the 133 MHz StrongARM, milliseconds.
    pub strongarm_ms: f64,
    /// Time on the Pentium III 450 MHz, milliseconds.
    pub p3_450_ms: f64,
}

/// Returns the paper's printed Table 2 row for a (priced) operation, or
/// `None` for operations the paper treats as negligible.
pub fn table2_row(op: CompOp) -> Option<CostRow> {
    let (mj, ms, p3) = match op {
        CompOp::ModExp => (9.1, 37.92, 8.8),
        CompOp::MapToPoint => (18.4, 76.67, 17.78),
        CompOp::TatePairing => (47.0, 191.5, 44.4),
        CompOp::EcScalarMul => (8.8, 36.67, 8.5),
        CompOp::SignGen(Scheme::Dsa) => (9.1, 37.92, 8.8),
        CompOp::SignGen(Scheme::Ecdsa) => (8.8, 36.67, 8.5),
        CompOp::SignGen(Scheme::Sok) => (17.6, 73.33, 17.0),
        CompOp::SignGen(Scheme::Gq) => (18.2, 75.83, 17.6),
        CompOp::SignVerify(Scheme::Dsa) => (11.1, 46.33, 10.75),
        CompOp::SignVerify(Scheme::Ecdsa) => (10.9, 45.42, 10.5),
        CompOp::SignVerify(Scheme::Sok) => (137.7, 573.75, 133.2),
        CompOp::SignVerify(Scheme::Gq) => (18.2, 75.83, 17.6),
        // Certificate verification costs one signature verification of the
        // issuing scheme (paper §5: "receive and verify n−1 certificates").
        CompOp::CertVerify(s) => return table2_row(CompOp::SignVerify(s)),
        _ => return None,
    };
    Some(CostRow {
        strongarm_mj: mj,
        strongarm_ms: ms,
        p3_450_ms: p3,
    })
}

/// A microprocessor energy model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CpuModel {
    /// Human-readable name.
    pub name: String,
    /// Power draw in milliwatts.
    pub power_mw: f64,
}

impl CpuModel {
    /// The paper's 133 MHz StrongARM SA-1110 at 240 mW.
    pub fn strongarm_133() -> Self {
        CpuModel {
            name: "133MHz StrongARM SA-1110".into(),
            power_mw: STRONGARM_POWER_MW,
        }
    }

    /// Energy in millijoules for one occurrence of `op` (0 for negligible
    /// operations, matching the paper's accounting).
    pub fn op_energy_mj(&self, op: CompOp) -> f64 {
        table2_row(op).map_or(0.0, |r| r.strongarm_mj)
    }

    /// Time in milliseconds for one occurrence of `op` on the StrongARM.
    pub fn op_time_ms(&self, op: CompOp) -> f64 {
        table2_row(op).map_or(0.0, |r| r.strongarm_ms)
    }

    /// Applies the paper's extrapolation rule (eq. (4)): StrongARM time and
    /// energy from a P3-450 timing.
    pub fn derive_strongarm(p3_450_ms: f64) -> (f64, f64) {
        let alpha_ms = p3_450_ms / P3_450_MODEXP_MS * STRONGARM_MODEXP_MS;
        let beta_mj = STRONGARM_POWER_MW * alpha_ms / 1000.0;
        (alpha_ms, beta_mj)
    }

    /// Scales a Pentium III 1 GHz timing to the P3-450 (paper: ×2.22).
    pub fn p3_1ghz_to_450(ms: f64) -> f64 {
        ms * P3_1GHZ_TO_450_SCALE
    }
}

/// Total computational energy (mJ) of an op-count vector under `cpu`.
pub fn comp_energy_mj(cpu: &CpuModel, counts: &crate::ops::OpCounts) -> f64 {
    let mut total = 0.0;
    for i in 0..crate::ops::NUM_OPS {
        if let Some(op) = CompOp::from_index(i) {
            let c = counts.comp.get(i).copied().unwrap_or(0);
            if c > 0 {
                total += c as f64 * cpu.op_energy_mj(op);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCounts;

    /// Relative error helper.
    fn rel_err(a: f64, b: f64) -> f64 {
        ((a - b) / b).abs()
    }

    #[test]
    fn modexp_base_case_is_self_consistent() {
        // 9.1 mJ / 240 mW = 37.92 ms (paper §6).
        let row = table2_row(CompOp::ModExp).unwrap();
        assert!(
            rel_err(
                row.strongarm_mj / STRONGARM_POWER_MW * 1000.0,
                row.strongarm_ms
            ) < 1e-3
        );
    }

    #[test]
    fn extrapolation_rule_reproduces_printed_times() {
        // Paper's own rounding keeps everything within 0.5 %.
        for op in [
            CompOp::ModExp,
            CompOp::MapToPoint,
            CompOp::EcScalarMul,
            CompOp::SignGen(Scheme::Dsa),
            CompOp::SignGen(Scheme::Ecdsa),
            CompOp::SignGen(Scheme::Sok),
            CompOp::SignGen(Scheme::Gq),
            CompOp::SignVerify(Scheme::Dsa),
            CompOp::SignVerify(Scheme::Ecdsa),
            CompOp::SignVerify(Scheme::Sok),
            CompOp::SignVerify(Scheme::Gq),
        ] {
            let row = table2_row(op).unwrap();
            let (alpha, _) = CpuModel::derive_strongarm(row.p3_450_ms);
            assert!(
                rel_err(alpha, row.strongarm_ms) < 5e-3,
                "{op:?}: derived {alpha} vs printed {}",
                row.strongarm_ms
            );
        }
    }

    #[test]
    fn tate_pairing_paper_inconsistency_is_bounded() {
        // The paper prints 47.0 mJ with 191.5 ms; 191.5 ms × 240 mW = 45.96 mJ.
        // Document the ~2.2% discrepancy and keep the printed value canonical.
        let row = table2_row(CompOp::TatePairing).unwrap();
        let implied_mj = row.strongarm_ms * STRONGARM_POWER_MW / 1000.0;
        let err = rel_err(implied_mj, row.strongarm_mj);
        assert!(err > 0.01 && err < 0.03, "err = {err}");
    }

    #[test]
    fn tate_timing_derives_from_p3_1ghz() {
        // 20 ms on P3-1GHz × 2.22 = 44.4 ms on P3-450 (paper §6).
        let p3 = CpuModel::p3_1ghz_to_450(20.0);
        assert!(rel_err(p3, 44.4) < 2e-3);
        // MapToPoint: IBE encrypt (35ms) − decrypt (27ms) = 8 ms → 17.78 ms.
        let mtp = CpuModel::p3_1ghz_to_450(8.0);
        assert!(rel_err(mtp, 17.78) < 2e-3);
    }

    #[test]
    fn energy_derivation_matches_printed_energies() {
        for op in [
            CompOp::MapToPoint,
            CompOp::EcScalarMul,
            CompOp::SignGen(Scheme::Sok),
            CompOp::SignGen(Scheme::Gq),
            CompOp::SignVerify(Scheme::Dsa),
            CompOp::SignVerify(Scheme::Sok),
            CompOp::SignVerify(Scheme::Gq),
        ] {
            let row = table2_row(op).unwrap();
            let (_, beta) = CpuModel::derive_strongarm(row.p3_450_ms);
            assert!(
                rel_err(beta, row.strongarm_mj) < 6e-3,
                "{op:?}: derived {beta} vs printed {}",
                row.strongarm_mj
            );
        }
    }

    #[test]
    fn negligible_ops_cost_zero() {
        let cpu = CpuModel::strongarm_133();
        for op in [
            CompOp::SymEnc,
            CompOp::SymDec,
            CompOp::Hash,
            CompOp::ModMul,
            CompOp::ModInv,
        ] {
            assert_eq!(cpu.op_energy_mj(op), 0.0);
        }
    }

    #[test]
    fn cert_verify_priced_as_sign_verify() {
        let cpu = CpuModel::strongarm_133();
        assert_eq!(
            cpu.op_energy_mj(CompOp::CertVerify(Scheme::Ecdsa)),
            cpu.op_energy_mj(CompOp::SignVerify(Scheme::Ecdsa))
        );
    }

    #[test]
    fn comp_energy_weights_counts() {
        let cpu = CpuModel::strongarm_133();
        let mut c = OpCounts::new();
        c.add(CompOp::ModExp, 3);
        c.add(CompOp::SignGen(Scheme::Gq), 1);
        c.add(CompOp::SignVerify(Scheme::Gq), 1);
        let e = comp_energy_mj(&cpu, &c);
        assert!((e - (3.0 * 9.1 + 18.2 + 18.2)).abs() < 1e-9);
    }
}
