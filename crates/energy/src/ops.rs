//! Operation vocabulary and count vectors.
//!
//! Every computational step the paper's cost model prices (Table 2) plus the
//! operations it deliberately treats as negligible (symmetric crypto and
//! hashing, per §7) are enumerated here. Protocol implementations record
//! these into a [`crate::meter::Meter`]; analytic formulas produce the same
//! [`OpCounts`] shape so instrumented and closed-form counts can be diffed.

use serde::{Deserialize, Serialize};

/// Signature schemes priced by Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// 1024-bit DSA.
    Dsa,
    /// 160-bit curve ECDSA.
    Ecdsa,
    /// Sakai–Ohgishi–Kasahara ID-based (pairing, 194-bit curve).
    Sok,
    /// Guillou–Quisquater ID-based (1024-bit modulus), the paper's variant.
    Gq,
}

impl Scheme {
    /// All schemes, in Table 2 row order.
    pub const ALL: [Scheme; 4] = [Scheme::Dsa, Scheme::Ecdsa, Scheme::Sok, Scheme::Gq];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Dsa => "DSA",
            Scheme::Ecdsa => "ECDSA",
            Scheme::Sok => "SOK",
            Scheme::Gq => "GQ",
        }
    }
}

/// A computational operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompOp {
    /// Modular exponentiation (1024-bit modulus).
    ModExp,
    /// Hash-to-curve-point (pairing schemes).
    MapToPoint,
    /// Tate pairing evaluation.
    TatePairing,
    /// Elliptic-curve scalar multiplication.
    EcScalarMul,
    /// Signature generation under `Scheme`.
    SignGen(Scheme),
    /// Signature verification under `Scheme`. For GQ this covers the paper's
    /// *batch* verification (eq. (2)), which it prices as one verification.
    SignVerify(Scheme),
    /// Certificate verification (priced as one signature verification of the
    /// issuing scheme).
    CertVerify(Scheme),
    /// Symmetric encryption (negligible per the paper).
    SymEnc,
    /// Symmetric decryption (negligible per the paper).
    SymDec,
    /// Hash invocation (negligible per the paper).
    Hash,
    /// Modular multiplication (negligible per the paper).
    ModMul,
    /// Modular inversion (negligible per the paper).
    ModInv,
}

/// Number of distinct [`CompOp`] slots (for dense count arrays).
pub const NUM_OPS: usize = 21;

impl CompOp {
    /// Dense index into count arrays.
    pub fn index(self) -> usize {
        match self {
            CompOp::ModExp => 0,
            CompOp::MapToPoint => 1,
            CompOp::TatePairing => 2,
            CompOp::EcScalarMul => 3,
            CompOp::SignGen(s) => 4 + scheme_index(s),
            CompOp::SignVerify(s) => 8 + scheme_index(s),
            CompOp::CertVerify(s) => 12 + scheme_index(s),
            CompOp::SymEnc => 16,
            CompOp::SymDec => 17,
            CompOp::Hash => 18,
            CompOp::ModMul => 19,
            CompOp::ModInv => 20,
        }
    }

    /// Inverse of [`CompOp::index`].
    pub fn from_index(i: usize) -> Option<CompOp> {
        Some(match i {
            0 => CompOp::ModExp,
            1 => CompOp::MapToPoint,
            2 => CompOp::TatePairing,
            3 => CompOp::EcScalarMul,
            4..=7 => CompOp::SignGen(Scheme::ALL[i - 4]),
            8..=11 => CompOp::SignVerify(Scheme::ALL[i - 8]),
            12..=15 => CompOp::CertVerify(Scheme::ALL[i - 12]),
            16 => CompOp::SymEnc,
            17 => CompOp::SymDec,
            18 => CompOp::Hash,
            19 => CompOp::ModMul,
            20 => CompOp::ModInv,
            _ => return None,
        })
    }
}

fn scheme_index(s: Scheme) -> usize {
    match s {
        Scheme::Dsa => 0,
        Scheme::Ecdsa => 1,
        Scheme::Sok => 2,
        Scheme::Gq => 3,
    }
}

/// A snapshot of per-node operation and traffic counts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Computational op counts indexed by [`CompOp::index`].
    pub comp: Vec<u64>,
    /// Bits transmitted (paper-nominal accounting).
    pub tx_bits: u64,
    /// Bits received (paper-nominal accounting).
    pub rx_bits: u64,
    /// Bits transmitted as actually serialized (framing ablation; 0 for
    /// closed-form counts, which have no real encoding).
    pub tx_bits_actual: u64,
    /// Bits received as actually serialized.
    pub rx_bits_actual: u64,
    /// Messages transmitted.
    pub msgs_tx: u64,
    /// Messages received.
    pub msgs_rx: u64,
}

impl OpCounts {
    /// An all-zero count vector.
    pub fn new() -> Self {
        OpCounts {
            comp: vec![0; NUM_OPS],
            tx_bits: 0,
            rx_bits: 0,
            tx_bits_actual: 0,
            rx_bits_actual: 0,
            msgs_tx: 0,
            msgs_rx: 0,
        }
    }

    /// Count for a specific op.
    pub fn get(&self, op: CompOp) -> u64 {
        self.comp.get(op.index()).copied().unwrap_or(0)
    }

    /// Adds `k` occurrences of `op`.
    pub fn add(&mut self, op: CompOp, k: u64) {
        if self.comp.len() < NUM_OPS {
            self.comp.resize(NUM_OPS, 0);
        }
        self.comp[op.index()] += k;
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &OpCounts) {
        if self.comp.len() < NUM_OPS {
            self.comp.resize(NUM_OPS, 0);
        }
        for (i, &v) in other.comp.iter().enumerate() {
            self.comp[i] += v;
        }
        self.tx_bits += other.tx_bits;
        self.rx_bits += other.rx_bits;
        self.tx_bits_actual += other.tx_bits_actual;
        self.rx_bits_actual += other.rx_bits_actual;
        self.msgs_tx += other.msgs_tx;
        self.msgs_rx += other.msgs_rx;
    }

    /// Adds `k` copies of `other` in one pass (closed-form role pricing
    /// multiplies per-role counts by role population; looping `merge` is
    /// O(population)).
    pub fn merge_scaled(&mut self, other: &OpCounts, k: u64) {
        if self.comp.len() < NUM_OPS {
            self.comp.resize(NUM_OPS, 0);
        }
        for (i, &v) in other.comp.iter().enumerate() {
            self.comp[i] += v * k;
        }
        self.tx_bits += other.tx_bits * k;
        self.rx_bits += other.rx_bits * k;
        self.tx_bits_actual += other.tx_bits_actual * k;
        self.rx_bits_actual += other.rx_bits_actual * k;
        self.msgs_tx += other.msgs_tx * k;
        self.msgs_rx += other.msgs_rx * k;
    }

    /// `self - base`, for diffing meter snapshots around a step.
    ///
    /// # Panics
    /// Panics if any count would go negative.
    pub fn diff(&self, base: &OpCounts) -> OpCounts {
        let mut out = OpCounts::new();
        for i in 0..NUM_OPS {
            let a = self.comp.get(i).copied().unwrap_or(0);
            let b = base.comp.get(i).copied().unwrap_or(0);
            out.comp[i] = a.checked_sub(b).expect("count went backwards");
        }
        out.tx_bits = self.tx_bits - base.tx_bits;
        out.rx_bits = self.rx_bits - base.rx_bits;
        out.tx_bits_actual = self.tx_bits_actual - base.tx_bits_actual;
        out.rx_bits_actual = self.rx_bits_actual - base.rx_bits_actual;
        out.msgs_tx = self.msgs_tx - base.msgs_tx;
        out.msgs_rx = self.msgs_rx - base.msgs_rx;
        out
    }

    /// Total modular exponentiations (the paper's "Exp." row).
    pub fn exps(&self) -> u64 {
        self.get(CompOp::ModExp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_covers_all_slots() {
        for i in 0..NUM_OPS {
            let op = CompOp::from_index(i).expect("every slot maps to an op");
            assert_eq!(op.index(), i);
        }
        assert!(CompOp::from_index(NUM_OPS).is_none());
    }

    #[test]
    fn counts_add_and_merge() {
        let mut a = OpCounts::new();
        a.add(CompOp::ModExp, 3);
        a.add(CompOp::SignGen(Scheme::Gq), 1);
        a.tx_bits = 100;
        let mut b = OpCounts::new();
        b.add(CompOp::ModExp, 2);
        b.rx_bits = 50;
        a.merge(&b);
        assert_eq!(a.get(CompOp::ModExp), 5);
        assert_eq!(a.get(CompOp::SignGen(Scheme::Gq)), 1);
        assert_eq!(a.tx_bits, 100);
        assert_eq!(a.rx_bits, 50);
    }

    #[test]
    fn merge_scaled_matches_repeated_merge() {
        let mut unit = OpCounts::new();
        unit.add(CompOp::ModExp, 2);
        unit.tx_bits = 7;
        unit.msgs_rx = 3;
        let mut looped = OpCounts::new();
        for _ in 0..5 {
            looped.merge(&unit);
        }
        let mut scaled = OpCounts::new();
        scaled.merge_scaled(&unit, 5);
        assert_eq!(looped, scaled);
    }

    #[test]
    fn diff_subtracts() {
        let mut base = OpCounts::new();
        base.add(CompOp::Hash, 2);
        let mut now = base.clone();
        now.add(CompOp::Hash, 3);
        now.tx_bits = 10;
        let d = now.diff(&base);
        assert_eq!(d.get(CompOp::Hash), 3);
        assert_eq!(d.tx_bits, 10);
    }

    #[test]
    #[should_panic(expected = "count went backwards")]
    fn diff_negative_panics() {
        let mut base = OpCounts::new();
        base.add(CompOp::Hash, 2);
        OpCounts::new().diff(&base);
    }
}
