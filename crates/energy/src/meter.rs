//! Thread-safe per-node operation meters.
//!
//! Nodes run concurrently in the simulator (crossbeam scoped threads), so the
//! meter is a bank of relaxed atomics — contention-free counting, snapshot
//! on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ops::{CompOp, OpCounts, NUM_OPS};

/// Shared operation/traffic counter for one simulated node.
///
/// Cloning is cheap (`Arc`); all handles observe the same counters.
#[derive(Clone, Debug, Default)]
pub struct Meter {
    inner: Arc<MeterInner>,
}

#[derive(Debug, Default)]
struct MeterInner {
    comp: [AtomicU64; NUM_OPS],
    tx_bits: AtomicU64,
    rx_bits: AtomicU64,
    msgs_tx: AtomicU64,
    msgs_rx: AtomicU64,
}

impl Meter {
    /// Creates a fresh zeroed meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Records one occurrence of `op`.
    #[inline]
    pub fn record(&self, op: CompOp) {
        self.record_n(op, 1);
    }

    /// Records `k` occurrences of `op`.
    #[inline]
    pub fn record_n(&self, op: CompOp, k: u64) {
        self.inner.comp[op.index()].fetch_add(k, Ordering::Relaxed);
    }

    /// Records a transmitted message of `bits` bits.
    pub fn record_tx(&self, bits: u64) {
        self.inner.tx_bits.fetch_add(bits, Ordering::Relaxed);
        self.inner.msgs_tx.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a received message of `bits` bits.
    pub fn record_rx(&self, bits: u64) {
        self.inner.rx_bits.fetch_add(bits, Ordering::Relaxed);
        self.inner.msgs_rx.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot (relaxed reads; exact when no
    /// concurrent writers, which is how the simulator uses it between phases).
    pub fn snapshot(&self) -> OpCounts {
        let mut out = OpCounts::new();
        for i in 0..NUM_OPS {
            out.comp[i] = self.inner.comp[i].load(Ordering::Relaxed);
        }
        out.tx_bits = self.inner.tx_bits.load(Ordering::Relaxed);
        out.rx_bits = self.inner.rx_bits.load(Ordering::Relaxed);
        out.msgs_tx = self.inner.msgs_tx.load(Ordering::Relaxed);
        out.msgs_rx = self.inner.msgs_rx.load(Ordering::Relaxed);
        out
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.inner.comp {
            c.store(0, Ordering::Relaxed);
        }
        self.inner.tx_bits.store(0, Ordering::Relaxed);
        self.inner.rx_bits.store(0, Ordering::Relaxed);
        self.inner.msgs_tx.store(0, Ordering::Relaxed);
        self.inner.msgs_rx.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scheme;

    #[test]
    fn record_and_snapshot() {
        let m = Meter::new();
        m.record(CompOp::ModExp);
        m.record_n(CompOp::ModExp, 2);
        m.record(CompOp::SignVerify(Scheme::Gq));
        m.record_tx(2080);
        m.record_rx(1040);
        m.record_rx(1040);
        let s = m.snapshot();
        assert_eq!(s.get(CompOp::ModExp), 3);
        assert_eq!(s.get(CompOp::SignVerify(Scheme::Gq)), 1);
        assert_eq!(s.tx_bits, 2080);
        assert_eq!(s.msgs_tx, 1);
        assert_eq!(s.rx_bits, 2080);
        assert_eq!(s.msgs_rx, 2);
    }

    #[test]
    fn clones_share_state() {
        let m = Meter::new();
        let m2 = m.clone();
        m2.record(CompOp::Hash);
        assert_eq!(m.snapshot().get(CompOp::Hash), 1);
    }

    #[test]
    fn reset_zeroes() {
        let m = Meter::new();
        m.record(CompOp::ModExp);
        m.record_tx(10);
        m.reset();
        let s = m.snapshot();
        assert_eq!(s.get(CompOp::ModExp), 0);
        assert_eq!(s.tx_bits, 0);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let m = Meter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record(CompOp::ModMul);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().get(CompOp::ModMul), 8000);
    }
}
