//! Communication energy cost model — the paper's Table 3.
//!
//! Two transceivers:
//!
//! * the 100 kbps sensor radio (Carman et al. / Hodjat & Verbauwhede):
//!   10.8 µJ/bit transmit, 7.51 µJ/bit receive;
//! * the IEEE 802.11 Spectrum24 LA-4121 WLAN card (Karri & Mishra):
//!   0.66 µJ/bit transmit, 0.31 µJ/bit receive.
//!
//! Every derived row of Table 3 (certificates, signatures) is exactly
//! `size_bits × per-bit cost`; tests pin each printed value.

use serde::{Deserialize, Serialize};

/// A radio transceiver energy model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transceiver {
    /// Human-readable name.
    pub name: String,
    /// Transmit energy, microjoules per bit.
    pub tx_uj_per_bit: f64,
    /// Receive energy, microjoules per bit.
    pub rx_uj_per_bit: f64,
    /// Nominal data rate in bits/s (used for latency estimates only).
    pub data_rate_bps: u64,
}

impl Transceiver {
    /// The 100 kbps sensor-network radio module.
    pub fn radio_100kbps() -> Self {
        Transceiver {
            name: "100kbps Transceiver".into(),
            tx_uj_per_bit: 10.8,
            rx_uj_per_bit: 7.51,
            data_rate_bps: 100_000,
        }
    }

    /// The IEEE 802.11 Spectrum24 LA-4121 WLAN card.
    pub fn wlan_spectrum24() -> Self {
        Transceiver {
            name: "IEEE 802.11 Spectrum24 WLAN card".into(),
            tx_uj_per_bit: 0.66,
            rx_uj_per_bit: 0.31,
            data_rate_bps: 11_000_000,
        }
    }

    /// Both paper transceivers, in Figure 1 order.
    pub fn paper_pair() -> [Transceiver; 2] {
        [Self::radio_100kbps(), Self::wlan_spectrum24()]
    }

    /// Energy (mJ) to transmit `bits`.
    pub fn tx_energy_mj(&self, bits: u64) -> f64 {
        bits as f64 * self.tx_uj_per_bit / 1000.0
    }

    /// Energy (mJ) to receive `bits`.
    pub fn rx_energy_mj(&self, bits: u64) -> f64 {
        bits as f64 * self.rx_uj_per_bit / 1000.0
    }

    /// Airtime (ms) to move `bits` at the nominal data rate.
    pub fn airtime_ms(&self, bits: u64) -> f64 {
        bits as f64 / self.data_rate_bps as f64 * 1000.0
    }
}

/// Canonical wire sizes (bits) used throughout the paper's accounting.
pub mod wire {
    /// User identity (paper: 32-bit IDs).
    pub const ID_BITS: u64 = 32;
    /// A Burmester–Desmedt key share `z_i ∈ Z_p` (1024-bit `p`).
    pub const Z_BITS: u64 = 1024;
    /// A GQ commitment `t_i ∈ Z_n` (1024-bit `n`).
    pub const T_BITS: u64 = 1024;
    /// A BD round-2 value `X_i ∈ Z_p`.
    pub const X_BITS: u64 = 1024;
    /// DSA certificate: 263 bytes (paper Table 3 note).
    pub const DSA_CERT_BITS: u64 = 263 * 8;
    /// ECDSA certificate: 86 bytes (paper Table 3 note).
    pub const ECDSA_CERT_BITS: u64 = 86 * 8;
    /// DSA/ECDSA signature `(r, s)`: 2 × 160 bits.
    pub const DSA_SIG_BITS: u64 = 320;
    /// ECDSA signature `(r, s)`: 2 × 160 bits.
    pub const ECDSA_SIG_BITS: u64 = 320;
    /// SOK signature `(S1, S2)`: 2 × 194 bits.
    pub const SOK_SIG_BITS: u64 = 388;
    /// GQ signature `(s, c)`: 1024 + 160 bits.
    pub const GQ_SIG_BITS: u64 = 1184;
    /// GQ round-2 broadcast carries only `s_i` (all users compute `c`
    /// themselves from the stored `T`, `Z`).
    pub const GQ_S_ONLY_BITS: u64 = 1024;

    /// Signature size for a scheme.
    pub fn sig_bits(scheme: crate::ops::Scheme) -> u64 {
        match scheme {
            crate::ops::Scheme::Dsa => DSA_SIG_BITS,
            crate::ops::Scheme::Ecdsa => ECDSA_SIG_BITS,
            crate::ops::Scheme::Sok => SOK_SIG_BITS,
            crate::ops::Scheme::Gq => GQ_SIG_BITS,
        }
    }

    /// Certificate size for a certificate-based scheme (0 for ID-based).
    pub fn cert_bits(scheme: crate::ops::Scheme) -> u64 {
        match scheme {
            crate::ops::Scheme::Dsa => DSA_CERT_BITS,
            crate::ops::Scheme::Ecdsa => ECDSA_CERT_BITS,
            crate::ops::Scheme::Sok | crate::ops::Scheme::Gq => 0,
        }
    }
}

/// Total radio energy (mJ) of an op-count vector under `radio`.
pub fn comm_energy_mj(radio: &Transceiver, counts: &crate::ops::OpCounts) -> f64 {
    radio.tx_energy_mj(counts.tx_bits) + radio.rx_energy_mj(counts.rx_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    /// Table 3: every printed row equals bits × per-bit cost.
    #[test]
    fn table3_dsa_cert_rows() {
        let r = Transceiver::radio_100kbps();
        let w = Transceiver::wlan_spectrum24();
        assert!(close(r.tx_energy_mj(wire::DSA_CERT_BITS), 22.72, 0.01));
        assert!(close(r.rx_energy_mj(wire::DSA_CERT_BITS), 15.8, 0.01));
        assert!(close(w.tx_energy_mj(wire::DSA_CERT_BITS), 1.38, 0.01));
        assert!(close(w.rx_energy_mj(wire::DSA_CERT_BITS), 0.64, 0.02));
    }

    #[test]
    fn table3_ecdsa_cert_rows() {
        let r = Transceiver::radio_100kbps();
        let w = Transceiver::wlan_spectrum24();
        assert!(close(r.tx_energy_mj(wire::ECDSA_CERT_BITS), 7.43, 0.01));
        assert!(close(r.rx_energy_mj(wire::ECDSA_CERT_BITS), 5.17, 0.01));
        assert!(close(w.tx_energy_mj(wire::ECDSA_CERT_BITS), 0.45, 0.01));
        assert!(close(w.rx_energy_mj(wire::ECDSA_CERT_BITS), 0.21, 0.01));
    }

    #[test]
    fn table3_signature_rows() {
        let r = Transceiver::radio_100kbps();
        let w = Transceiver::wlan_spectrum24();
        // DSA/ECDSA (320 bits)
        assert!(close(r.tx_energy_mj(320), 3.46, 0.01));
        assert!(close(r.rx_energy_mj(320), 2.40, 0.01));
        assert!(close(w.tx_energy_mj(320), 0.21, 0.01));
        assert!(close(w.rx_energy_mj(320), 0.1, 0.01));
        // SOK (388 bits)
        assert!(close(r.tx_energy_mj(388), 4.19, 0.01));
        assert!(close(r.rx_energy_mj(388), 2.91, 0.01));
        assert!(close(w.tx_energy_mj(388), 0.26, 0.01));
        assert!(close(w.rx_energy_mj(388), 0.12, 0.01));
        // GQ (1184 bits)
        assert!(close(r.tx_energy_mj(1184), 12.79, 0.01));
        assert!(close(r.rx_energy_mj(1184), 8.89, 0.01));
        assert!(close(w.tx_energy_mj(1184), 0.78, 0.01));
        assert!(close(w.rx_energy_mj(1184), 0.36, 0.01)); // paper truncates 0.367
    }

    #[test]
    fn airtime_at_rate() {
        let r = Transceiver::radio_100kbps();
        assert!(close(r.airtime_ms(100_000), 1000.0, 1e-9));
    }

    #[test]
    fn comm_energy_combines_tx_rx() {
        let mut c = crate::ops::OpCounts::new();
        c.tx_bits = 1000;
        c.rx_bits = 2000;
        let r = Transceiver::radio_100kbps();
        assert!(close(comm_energy_mj(&r, &c), 10.8 + 15.02, 1e-9));
    }
}
