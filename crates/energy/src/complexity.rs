//! Closed-form per-user operation counts — the paper's Tables 1 and 4, and
//! the per-role breakdown behind Table 5.
//!
//! Every function here produces the same [`OpCounts`] shape that the
//! instrumented protocol runs produce, so `egka-sim` can diff them
//! (`closed_form == instrumented` is asserted by integration tests for the
//! sizes we actually execute).
//!
//! ## Reverse-engineered accounting conventions
//!
//! Reconstructing Table 5's printed joules pins down three conventions the
//! paper never states explicitly (all three are encoded here and documented
//! in `EXPERIMENTS.md`):
//!
//! 1. **Intended recipients only.** A node is charged reception only for
//!    messages it *uses* (e.g. the Join announcement `m_{n+1}` is charged to
//!    `U_1` and `U_n` but not to bystanders), matching duty-cycled radios.
//! 2. **Certificate verification is cached.** Re-running BD after a Join
//!    charges returning members one certificate verification (the
//!    newcomer's); the newcomer pays for all `n`. (BD-Join `U_1..U_n` =
//!    1.234 J vs `U_{n+1}` = 2.31 J is reproduced only under this rule.)
//! 3. **Envelopes cost their plaintext size.** `E_K(K*||U_1)` is priced at
//!    `1024 + 32` bits — no IV/tag/padding overhead. The real envelope's
//!    overhead is measured separately as an ablation.
//!
//! Where the paper's own tables disagree with each other (Table 4's "2 sign
//! gen, n+3 verifications" for re-executed BD vs Table 1/Table 5's "1 gen,
//! n−1 verifications"), we implement the Table 1/Table 5 convention — it is
//! the one whose joules the paper actually prints — and keep Table 4's
//! symbolic strings verbatim for display.

use crate::ops::{CompOp, OpCounts, Scheme};
use crate::radio::wire;

/// The five initial-GKA columns of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InitialProtocol {
    /// The paper's proposal: BD + GQ batch verification.
    ProposedGqBatch,
    /// BD authenticated with SOK (pairing) signatures.
    BdSok,
    /// BD authenticated with ECDSA + certificates.
    BdEcdsa,
    /// BD authenticated with DSA + certificates.
    BdDsa,
    /// The Saeednia–Safavi-Naini ID-based scheme.
    Ssn,
}

impl InitialProtocol {
    /// All columns in Table 1 order.
    pub const ALL: [InitialProtocol; 5] = [
        InitialProtocol::ProposedGqBatch,
        InitialProtocol::BdSok,
        InitialProtocol::BdEcdsa,
        InitialProtocol::BdDsa,
        InitialProtocol::Ssn,
    ];

    /// Column header as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            InitialProtocol::ProposedGqBatch => "Our Prop. sch.",
            InitialProtocol::BdSok => "BD with SOK",
            InitialProtocol::BdEcdsa => "BD with ECDSA",
            InitialProtocol::BdDsa => "BD with DSA",
            InitialProtocol::Ssn => "SSN sch.",
        }
    }

    /// Short machine-friendly key (CSV columns, bench ids).
    pub fn key(self) -> &'static str {
        match self {
            InitialProtocol::ProposedGqBatch => "proposed",
            InitialProtocol::BdSok => "bd_sok",
            InitialProtocol::BdEcdsa => "bd_ecdsa",
            InitialProtocol::BdDsa => "bd_dsa",
            InitialProtocol::Ssn => "ssn",
        }
    }

    /// Nominal bits of the Round-1 broadcast `m_i`.
    pub fn round1_bits(self) -> u64 {
        match self {
            // U_i || z_i || t_i
            InitialProtocol::ProposedGqBatch => wire::ID_BITS + wire::Z_BITS + wire::T_BITS,
            // U_i || z_i (ID-based, no cert)
            InitialProtocol::BdSok => wire::ID_BITS + wire::Z_BITS,
            // U_i || z_i || cert
            InitialProtocol::BdEcdsa => {
                wire::ID_BITS + wire::Z_BITS + wire::cert_bits(Scheme::Ecdsa)
            }
            InitialProtocol::BdDsa => wire::ID_BITS + wire::Z_BITS + wire::cert_bits(Scheme::Dsa),
            // U_i || z_i || t_i (ID-based implicit-authentication tag)
            InitialProtocol::Ssn => wire::ID_BITS + wire::Z_BITS + wire::T_BITS,
        }
    }

    /// Nominal bits of the Round-2 broadcast `m'_i`.
    pub fn round2_bits(self) -> u64 {
        match self {
            // U_i || X_i || s_i  (the shared challenge c is recomputed, only
            // the 1024-bit response travels)
            InitialProtocol::ProposedGqBatch => wire::ID_BITS + wire::X_BITS + wire::GQ_S_ONLY_BITS,
            // U_i || X_i || σ_i
            InitialProtocol::BdSok => wire::ID_BITS + wire::X_BITS + wire::sig_bits(Scheme::Sok),
            InitialProtocol::BdEcdsa => {
                wire::ID_BITS + wire::X_BITS + wire::sig_bits(Scheme::Ecdsa)
            }
            InitialProtocol::BdDsa => wire::ID_BITS + wire::X_BITS + wire::sig_bits(Scheme::Dsa),
            // U_i || X_i || s_i (implicit-authentication response)
            InitialProtocol::Ssn => wire::ID_BITS + wire::X_BITS + wire::GQ_S_ONLY_BITS,
        }
    }

    /// Closed-form per-user counts for the initial GKA at group size `n`
    /// (Table 1 column evaluated at `n`, plus the traffic the energy model
    /// needs for Figure 1).
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn per_user_counts(self, n: u64) -> OpCounts {
        assert!(n >= 2, "a group needs at least two members");
        let mut c = OpCounts::new();
        // All five protocols transmit 2 messages and receive 2(n−1).
        c.msgs_tx = 2;
        c.msgs_rx = 2 * (n - 1);
        c.tx_bits = self.round1_bits() + self.round2_bits();
        c.rx_bits = (n - 1) * (self.round1_bits() + self.round2_bits());
        match self {
            InitialProtocol::ProposedGqBatch => {
                c.add(CompOp::ModExp, 3);
                c.add(CompOp::SignGen(Scheme::Gq), 1);
                c.add(CompOp::SignVerify(Scheme::Gq), 1); // the single batch check
            }
            InitialProtocol::BdSok => {
                c.add(CompOp::ModExp, 3);
                c.add(CompOp::MapToPoint, n - 1);
                c.add(CompOp::SignGen(Scheme::Sok), 1);
                c.add(CompOp::SignVerify(Scheme::Sok), n - 1);
            }
            InitialProtocol::BdEcdsa => {
                c.add(CompOp::ModExp, 3);
                c.add(CompOp::SignGen(Scheme::Ecdsa), 1);
                c.add(CompOp::SignVerify(Scheme::Ecdsa), n - 1);
                c.add(CompOp::CertVerify(Scheme::Ecdsa), n - 1);
            }
            InitialProtocol::BdDsa => {
                c.add(CompOp::ModExp, 3);
                c.add(CompOp::SignGen(Scheme::Dsa), 1);
                c.add(CompOp::SignVerify(Scheme::Dsa), n - 1);
                c.add(CompOp::CertVerify(Scheme::Dsa), n - 1);
            }
            InitialProtocol::Ssn => {
                c.add(CompOp::ModExp, 2 * n + 4);
            }
        }
        c
    }
}

/// A row of the symbolic Table 1, exactly as printed.
#[derive(Clone, Copy, Debug)]
pub struct Table1Symbolic {
    /// Row label.
    pub row: &'static str,
    /// One entry per protocol column (Table 1 order).
    pub entries: [&'static str; 5],
}

/// The paper's Table 1, verbatim.
pub fn table1_symbolic() -> [Table1Symbolic; 9] {
    [
        Table1Symbolic {
            row: "Exp.",
            entries: ["3", "3", "3", "3", "2n+4"],
        },
        Table1Symbolic {
            row: "Msg Tx",
            entries: ["2", "2", "2", "2", "2"],
        },
        Table1Symbolic {
            row: "Msg Rx",
            entries: ["2(n-1)", "2(n-1)", "2(n-1)", "2(n-1)", "2(n-1)"],
        },
        Table1Symbolic {
            row: "Cert Tx",
            entries: ["-", "-", "1", "1", "-"],
        },
        Table1Symbolic {
            row: "Cert Rx",
            entries: ["-", "-", "n-1", "n-1", "-"],
        },
        Table1Symbolic {
            row: "Cert Ver",
            entries: ["-", "-", "n-1", "n-1", "-"],
        },
        Table1Symbolic {
            row: "MapToPt",
            entries: ["-", "n-1", "-", "-", "-"],
        },
        Table1Symbolic {
            row: "Sign Gen",
            entries: ["1", "1", "1", "1", "-"],
        },
        Table1Symbolic {
            row: "Sign Ver",
            entries: ["1", "n-1", "n-1", "n-1", "-"],
        },
    ]
}

/// The four dynamic membership events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DynamicEvent {
    /// One user joins.
    Join,
    /// One user leaves.
    Leave,
    /// Two groups merge.
    Merge,
    /// `ld` users are partitioned away.
    Partition,
}

impl DynamicEvent {
    /// All events, Table 4 order.
    pub const ALL: [DynamicEvent; 4] = [
        DynamicEvent::Join,
        DynamicEvent::Leave,
        DynamicEvent::Merge,
        DynamicEvent::Partition,
    ];

    /// Single-letter tag as in Table 4.
    pub fn tag(self) -> char {
        match self {
            DynamicEvent::Join => 'J',
            DynamicEvent::Leave => 'L',
            DynamicEvent::Merge => 'M',
            DynamicEvent::Partition => 'P',
        }
    }

    /// Full name.
    pub fn name(self) -> &'static str {
        match self {
            DynamicEvent::Join => "Join",
            DynamicEvent::Leave => "Leave",
            DynamicEvent::Merge => "Merge",
            DynamicEvent::Partition => "Partition",
        }
    }
}

/// One row of the symbolic Table 4, exactly as printed.
#[derive(Clone, Copy, Debug)]
pub struct Table4Row {
    /// "BD" or "Prop. Sch.".
    pub protocol: &'static str,
    /// Event tag.
    pub event: char,
    /// Rounds.
    pub rounds: &'static str,
    /// Total messages.
    pub msgs: &'static str,
    /// Exponentiations (with the paper's footnote letter).
    pub exps: &'static str,
    /// Signature generations.
    pub sign_gen: &'static str,
    /// Signature verifications.
    pub sign_ver: &'static str,
}

/// The paper's Table 4, verbatim (including its internal inconsistency with
/// Table 1/5 over BD's signature counts — see module docs).
pub fn table4_symbolic() -> [Table4Row; 8] {
    [
        Table4Row {
            protocol: "BD",
            event: 'J',
            rounds: "2",
            msgs: "2n+2",
            exps: "3 (a)",
            sign_gen: "2",
            sign_ver: "n+3",
        },
        Table4Row {
            protocol: "BD",
            event: 'L',
            rounds: "2",
            msgs: "2n-2",
            exps: "3 (a)",
            sign_gen: "2",
            sign_ver: "n+1",
        },
        Table4Row {
            protocol: "BD",
            event: 'M',
            rounds: "2",
            msgs: "2n+2m+2",
            exps: "3 (a)",
            sign_gen: "2",
            sign_ver: "n+m+2",
        },
        Table4Row {
            protocol: "BD",
            event: 'P',
            rounds: "2",
            msgs: "2n-2ld+2",
            exps: "3 (a)",
            sign_gen: "2",
            sign_ver: "n-ld+2",
        },
        Table4Row {
            protocol: "Prop. Sch.",
            event: 'J',
            rounds: "3",
            msgs: "5",
            exps: "2 (b)",
            sign_gen: "1",
            sign_ver: "1",
        },
        Table4Row {
            protocol: "Prop. Sch.",
            event: 'L',
            rounds: "2",
            msgs: "v+n-2",
            exps: "3 (c)",
            sign_gen: "1",
            sign_ver: "1",
        },
        Table4Row {
            protocol: "Prop. Sch.",
            event: 'M',
            rounds: "3",
            msgs: "6(k-1)",
            exps: "4 (d)",
            sign_gen: "1",
            sign_ver: "1",
        },
        Table4Row {
            protocol: "Prop. Sch.",
            event: 'P',
            rounds: "2",
            msgs: "v+n-2ld",
            exps: "3 (c)",
            sign_gen: "1",
            sign_ver: "1",
        },
    ]
}

/// Per-role closed-form counts for one dynamic event.
#[derive(Clone, Debug)]
pub struct RoleCounts {
    /// Role name as used in Table 5 ("U1", "Un", "Un+1", "Others", ...).
    pub role: &'static str,
    /// How many nodes play this role.
    pub population: u64,
    /// Per-node counts.
    pub counts: OpCounts,
}

// ----- nominal message sizes of the proposed dynamic protocols -----

/// `E_K(K* || U)`: a 1024-bit key plus a 32-bit identity, envelope priced at
/// plaintext size (accounting convention 3).
pub const ENV_KEY_BITS: u64 = wire::Z_BITS + wire::ID_BITS;

/// Join round 1: `U_{n+1} || z_{n+1} || σ_{n+1}` (full GQ signature).
pub const JOIN_M_NEW_BITS: u64 = wire::ID_BITS + wire::Z_BITS + wire::GQ_SIG_BITS;
/// Join round 2 (controller): `U_1 || E_K(K*||U_1)`.
pub const JOIN_M1_BITS: u64 = wire::ID_BITS + ENV_KEY_BITS;
/// Join round 2 (sponsor): `U_n || E_K(K_DH||U_n) || z_n || σ''_n`.
pub const JOIN_MN_BITS: u64 = wire::ID_BITS + ENV_KEY_BITS + wire::Z_BITS + wire::GQ_SIG_BITS;
/// Join round 3 (sponsor→newcomer unicast): `U_n || E_{K_DH}(K*||U_n)`.
pub const JOIN_MNN_BITS: u64 = wire::ID_BITS + ENV_KEY_BITS;

/// Merge round 1: `U || z̃ || z_edge || σ` per controller.
pub const MERGE_R1_BITS: u64 = wire::ID_BITS + 2 * wire::Z_BITS + wire::GQ_SIG_BITS;
/// Merge round 2: `U || E_{K_group}(K*||U) || E_{K_DH}(K*||U)`.
pub const MERGE_R2_BITS: u64 = wire::ID_BITS + 2 * ENV_KEY_BITS;
/// Merge round 3: `U || E_{K_group}(K*_other||U)`.
pub const MERGE_R3_BITS: u64 = wire::ID_BITS + ENV_KEY_BITS;

/// Leave/Partition round 1: `U_j || z'_j || t'_j`.
pub const LP_R1_BITS: u64 = wire::ID_BITS + wire::Z_BITS + wire::T_BITS;
/// Leave/Partition round 2: `U_i || X'_i || s̄_i`.
pub const LP_R2_BITS: u64 = wire::ID_BITS + wire::X_BITS + wire::GQ_S_ONLY_BITS;

/// Closed-form per-role counts for the **proposed Join** at current group
/// size `n` (new group size `n + 1`).
///
/// # Panics
/// Panics if `n < 3` (the protocol distinguishes `U_1`, `U_n` and at least
/// one bystander).
pub fn proposed_join(n: u64) -> Vec<RoleCounts> {
    assert!(n >= 3, "Join roles need n >= 3");
    // U1 (controller): verifies σ_{n+1}, 2 exps for K*, sends m'_1 to the
    // old group; hears m_{n+1} and m''_n.
    let mut u1 = OpCounts::new();
    u1.add(CompOp::SignVerify(Scheme::Gq), 1);
    u1.add(CompOp::ModExp, 2);
    u1.add(CompOp::SymEnc, 1);
    u1.msgs_tx = 1;
    u1.tx_bits = JOIN_M1_BITS;
    u1.msgs_rx = 2;
    u1.rx_bits = JOIN_M_NEW_BITS + JOIN_MN_BITS;

    // Un (sponsor): verifies σ_{n+1}, 1 exp for the DH key, signs m''_n,
    // decrypts K*, re-encrypts it for the newcomer.
    let mut un = OpCounts::new();
    un.add(CompOp::SignVerify(Scheme::Gq), 1);
    un.add(CompOp::ModExp, 1);
    un.add(CompOp::SignGen(Scheme::Gq), 1);
    un.add(CompOp::SymEnc, 2);
    un.add(CompOp::SymDec, 1);
    un.msgs_tx = 2;
    un.tx_bits = JOIN_MN_BITS + JOIN_MNN_BITS;
    un.msgs_rx = 2;
    un.rx_bits = JOIN_M_NEW_BITS + JOIN_M1_BITS;

    // U_{n+1} (newcomer): signs its announcement, 2 exps (z and DH),
    // verifies σ''_n, decrypts K*.
    let mut new = OpCounts::new();
    new.add(CompOp::SignGen(Scheme::Gq), 1);
    new.add(CompOp::ModExp, 2);
    new.add(CompOp::SignVerify(Scheme::Gq), 1);
    new.add(CompOp::SymDec, 1);
    new.msgs_tx = 1;
    new.tx_bits = JOIN_M_NEW_BITS;
    new.msgs_rx = 2;
    new.rx_bits = JOIN_MN_BITS + JOIN_MNN_BITS;

    // Bystanders U_2..U_{n-1}: decrypt two envelopes, hear m'_1 and m''_n.
    let mut others = OpCounts::new();
    others.add(CompOp::SymDec, 2);
    others.msgs_rx = 2;
    others.rx_bits = JOIN_M1_BITS + JOIN_MN_BITS;

    vec![
        RoleCounts {
            role: "U1",
            population: 1,
            counts: u1,
        },
        RoleCounts {
            role: "Un",
            population: 1,
            counts: un,
        },
        RoleCounts {
            role: "Un+1",
            population: 1,
            counts: new,
        },
        RoleCounts {
            role: "Others",
            population: n - 2,
            counts: others,
        },
    ]
}

/// Closed-form per-role counts for the **proposed Merge** of groups of size
/// `n` and `m` (k = 2 groups).
///
/// # Panics
/// Panics if either group has fewer than 2 members.
pub fn proposed_merge(n: u64, m: u64) -> Vec<RoleCounts> {
    assert!(n >= 2 && m >= 2, "Merge needs two non-trivial groups");
    // Each controller: 1 sign gen, 1 verify, 4 exps (z̃, DH, 2 for K*),
    // 3 transmissions, hears the peer's round-1 and round-2 messages.
    let mut controller = OpCounts::new();
    controller.add(CompOp::SignGen(Scheme::Gq), 1);
    controller.add(CompOp::SignVerify(Scheme::Gq), 1);
    controller.add(CompOp::ModExp, 4);
    controller.add(CompOp::SymEnc, 3); // two round-2 envelopes + one round-3
    controller.add(CompOp::SymDec, 1);
    controller.msgs_tx = 3;
    controller.tx_bits = MERGE_R1_BITS + MERGE_R2_BITS + MERGE_R3_BITS;
    controller.msgs_rx = 2;
    controller.rx_bits = MERGE_R1_BITS + MERGE_R2_BITS;

    // Bystanders in each group: hear their controller's round-2 and round-3
    // broadcasts, decrypt both.
    let mut bystander = OpCounts::new();
    bystander.add(CompOp::SymDec, 2);
    bystander.msgs_rx = 2;
    bystander.rx_bits = MERGE_R2_BITS + MERGE_R3_BITS;

    vec![
        RoleCounts {
            role: "U1",
            population: 1,
            counts: controller.clone(),
        },
        RoleCounts {
            role: "Un+1",
            population: 1,
            counts: controller,
        },
        RoleCounts {
            role: "Others",
            population: n + m - 2,
            counts: bystander,
        },
    ]
}

/// Closed-form per-role counts for the **proposed Leave** from group size
/// `n`, where `v` of the remaining users are odd-indexed (they refresh their
/// exponents; the paper's Table 5 uses `n = 100`, `v = 50`).
///
/// # Panics
/// Panics unless `2 <= v < n`.
pub fn proposed_leave(n: u64, v: u64) -> Vec<RoleCounts> {
    assert!(v >= 2 && v < n, "need some odd- and even-indexed remainers");
    let remaining = n - 1;
    // Odd-indexed: fresh (z', t') [1 exp + GQ commit inside sign gen],
    // X' [1 exp], key [1 exp] → 3 exps, 1 gen, 1 batch verify.
    let mut odd = OpCounts::new();
    odd.add(CompOp::ModExp, 3);
    odd.add(CompOp::SignGen(Scheme::Gq), 1);
    odd.add(CompOp::SignVerify(Scheme::Gq), 1);
    odd.msgs_tx = 2;
    odd.tx_bits = LP_R1_BITS + LP_R2_BITS;
    // Receives round-1 from the other v−1 odd users, round-2 from the other
    // remaining−1 users.
    odd.msgs_rx = (v - 1) + (remaining - 1);
    odd.rx_bits = (v - 1) * LP_R1_BITS + (remaining - 1) * LP_R2_BITS;

    // Even-indexed: X' and key → 2 exps, 1 gen, 1 batch verify.
    let mut even = OpCounts::new();
    even.add(CompOp::ModExp, 2);
    even.add(CompOp::SignGen(Scheme::Gq), 1);
    even.add(CompOp::SignVerify(Scheme::Gq), 1);
    even.msgs_tx = 1;
    even.tx_bits = LP_R2_BITS;
    even.msgs_rx = v + (remaining - 1);
    even.rx_bits = v * LP_R1_BITS + (remaining - 1) * LP_R2_BITS;

    vec![
        RoleCounts {
            role: "Uj, j odd",
            population: v,
            counts: odd,
        },
        RoleCounts {
            role: "Uk, k even",
            population: remaining - v,
            counts: even,
        },
    ]
}

/// Closed-form per-role counts for the **proposed Partition**: `ld` users
/// leave a group of `n`; `v` of the remaining users are odd-indexed
/// (Table 5 uses `n = 100`, `ld = 20`, `v = 40`).
///
/// # Panics
/// Panics unless `ld >= 1` and `2 <= v < n - ld`.
pub fn proposed_partition(n: u64, ld: u64, v: u64) -> Vec<RoleCounts> {
    assert!(ld >= 1 && ld < n, "partition must remove 1..n users");
    let remaining = n - ld;
    assert!(
        v >= 2 && v < remaining,
        "need odd- and even-indexed remainers"
    );
    let mut odd = OpCounts::new();
    odd.add(CompOp::ModExp, 3);
    odd.add(CompOp::SignGen(Scheme::Gq), 1);
    odd.add(CompOp::SignVerify(Scheme::Gq), 1);
    odd.msgs_tx = 2;
    odd.tx_bits = LP_R1_BITS + LP_R2_BITS;
    odd.msgs_rx = (v - 1) + (remaining - 1);
    odd.rx_bits = (v - 1) * LP_R1_BITS + (remaining - 1) * LP_R2_BITS;

    let mut even = OpCounts::new();
    even.add(CompOp::ModExp, 2);
    even.add(CompOp::SignGen(Scheme::Gq), 1);
    even.add(CompOp::SignVerify(Scheme::Gq), 1);
    even.msgs_tx = 1;
    even.tx_bits = LP_R2_BITS;
    even.msgs_rx = v + (remaining - 1);
    even.rx_bits = v * LP_R1_BITS + (remaining - 1) * LP_R2_BITS;

    vec![
        RoleCounts {
            role: "Uj, j odd",
            population: v,
            counts: odd,
        },
        RoleCounts {
            role: "Uk, k even",
            population: remaining - v,
            counts: even,
        },
    ]
}

/// Closed-form per-role counts for **re-executing authenticated BD** (the
/// paper's baseline for every dynamic event), with the ECDSA instantiation
/// Table 5 uses.
///
/// `new_certs` is how many certificates each role sees *for the first time*
/// (accounting convention 2): 1 for returning members of a Join, `n'−1` for
/// the newcomer, the other group's size for each side of a Merge, 0 for
/// Leave/Partition.
fn bd_reexec_role(group_size: u64, new_certs: u64) -> OpCounts {
    let proto = InitialProtocol::BdEcdsa;
    let mut c = OpCounts::new();
    c.add(CompOp::ModExp, 3);
    c.add(CompOp::SignGen(Scheme::Ecdsa), 1);
    c.add(CompOp::SignVerify(Scheme::Ecdsa), group_size - 1);
    c.add(CompOp::CertVerify(Scheme::Ecdsa), new_certs);
    c.msgs_tx = 2;
    c.msgs_rx = 2 * (group_size - 1);
    c.tx_bits = proto.round1_bits() + proto.round2_bits();
    c.rx_bits = (group_size - 1) * (proto.round1_bits() + proto.round2_bits());
    c
}

/// BD-re-execution roles for one dynamic event (Table 5's baseline rows).
///
/// Parameters follow Table 5: current group size `n`, merging users `m`,
/// partitioned users `ld`.
pub fn bd_reexec(event: DynamicEvent, n: u64, m: u64, ld: u64) -> Vec<RoleCounts> {
    match event {
        DynamicEvent::Join => vec![
            RoleCounts {
                role: "U1 - Un",
                population: n,
                counts: bd_reexec_role(n + 1, 1),
            },
            RoleCounts {
                role: "Un+1",
                population: 1,
                counts: bd_reexec_role(n + 1, n),
            },
        ],
        DynamicEvent::Leave => vec![RoleCounts {
            role: "Remain. Users",
            population: n - 1,
            counts: bd_reexec_role(n - 1, 0),
        }],
        DynamicEvent::Merge => vec![
            RoleCounts {
                role: "Group A Users",
                population: n,
                counts: bd_reexec_role(n + m, m),
            },
            RoleCounts {
                role: "Group B Users",
                population: m,
                counts: bd_reexec_role(n + m, n),
            },
        ],
        DynamicEvent::Partition => vec![RoleCounts {
            role: "Remain. Users",
            population: n - ld,
            counts: bd_reexec_role(n - ld, 0),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{comp_energy_mj, CpuModel};
    use crate::radio::{comm_energy_mj, Transceiver};

    fn total_mj(c: &OpCounts) -> f64 {
        comp_energy_mj(&CpuModel::strongarm_133(), c)
            + comm_energy_mj(&Transceiver::wlan_spectrum24(), c)
    }

    #[test]
    fn table1_exponent_row() {
        for p in InitialProtocol::ALL {
            let c = p.per_user_counts(100);
            let expect = if p == InitialProtocol::Ssn { 204 } else { 3 };
            assert_eq!(c.exps(), expect, "{}", p.name());
        }
    }

    #[test]
    fn table1_message_rows() {
        for p in InitialProtocol::ALL {
            let c = p.per_user_counts(50);
            assert_eq!(c.msgs_tx, 2);
            assert_eq!(c.msgs_rx, 98);
        }
    }

    #[test]
    fn table1_signature_rows() {
        let c = InitialProtocol::ProposedGqBatch.per_user_counts(100);
        assert_eq!(c.get(CompOp::SignGen(Scheme::Gq)), 1);
        assert_eq!(c.get(CompOp::SignVerify(Scheme::Gq)), 1);
        let c = InitialProtocol::BdSok.per_user_counts(100);
        assert_eq!(c.get(CompOp::SignVerify(Scheme::Sok)), 99);
        assert_eq!(c.get(CompOp::MapToPoint), 99);
        let c = InitialProtocol::BdEcdsa.per_user_counts(100);
        assert_eq!(c.get(CompOp::CertVerify(Scheme::Ecdsa)), 99);
        let c = InitialProtocol::Ssn.per_user_counts(100);
        assert_eq!(c.get(CompOp::SignGen(Scheme::Gq)), 0);
        assert_eq!(c.get(CompOp::SignVerify(Scheme::Gq)), 0);
    }

    /// Reconstruct Table 5's printed joules from the closed forms (the
    /// strongest validation that the accounting conventions are right).
    #[test]
    fn table5_bd_join_reconstruction() {
        let roles = bd_reexec(DynamicEvent::Join, 100, 20, 20);
        let returning = total_mj(&roles[0].counts);
        let newcomer = total_mj(&roles[1].counts);
        // Paper: 1.234 J and 2.31 J.
        assert!(
            (returning / 1000.0 - 1.234).abs() < 0.01,
            "returning = {returning} mJ"
        );
        assert!(
            (newcomer / 1000.0 - 2.31).abs() < 0.02,
            "newcomer = {newcomer} mJ"
        );
    }

    #[test]
    fn table5_bd_merge_reconstruction() {
        let roles = bd_reexec(DynamicEvent::Merge, 100, 20, 20);
        let a = total_mj(&roles[0].counts);
        let b = total_mj(&roles[1].counts);
        // Paper: 1.660 J and 2.532 J.
        assert!((a / 1000.0 - 1.660).abs() < 0.02, "A = {a} mJ");
        assert!((b / 1000.0 - 2.532).abs() < 0.02, "B = {b} mJ");
    }

    #[test]
    fn table5_bd_leave_partition_reconstruction() {
        let leave = total_mj(&bd_reexec(DynamicEvent::Leave, 100, 20, 20)[0].counts);
        let part = total_mj(&bd_reexec(DynamicEvent::Partition, 100, 20, 20)[0].counts);
        // Paper: 1.179 J and 0.942 J. The paper's own arithmetic for these
        // two rows is loose (see EXPERIMENTS.md); accept 4 %.
        assert!((leave / 1000.0 - 1.179).abs() < 0.05, "leave = {leave} mJ");
        assert!(
            (part / 1000.0 - 0.942).abs() < 0.04,
            "partition = {part} mJ"
        );
    }

    #[test]
    fn table5_proposed_join_reconstruction() {
        let roles = proposed_join(100);
        let by_role: Vec<f64> = roles.iter().map(|r| total_mj(&r.counts)).collect();
        // Paper: U1 = 0.039 J, Un = 0.049 J, Un+1 = 0.057 J, Others = 1.34 mJ.
        assert!((by_role[0] - 39.0).abs() < 1.0, "U1 = {} mJ", by_role[0]);
        assert!((by_role[1] - 49.0).abs() < 1.0, "Un = {} mJ", by_role[1]);
        assert!((by_role[2] - 57.0).abs() < 1.0, "Un+1 = {} mJ", by_role[2]);
        assert!(
            (by_role[3] - 1.34).abs() < 0.1,
            "Others = {} mJ",
            by_role[3]
        );
    }

    #[test]
    fn table5_proposed_merge_reconstruction() {
        let roles = proposed_merge(100, 20);
        let c = total_mj(&roles[0].counts);
        let o = total_mj(&roles[2].counts);
        // Paper: controllers 0.079 J, others 0.986 mJ.
        assert!((c - 79.0).abs() < 1.5, "controller = {c} mJ");
        assert!((o - 1.0).abs() < 0.1, "others = {o} mJ");
    }

    #[test]
    fn table5_proposed_leave_reconstruction() {
        let roles = proposed_leave(100, 50);
        let odd = total_mj(&roles[0].counts);
        let even = total_mj(&roles[1].counts);
        // Paper: 0.160 J and 0.150 J.
        assert!((odd - 160.0).abs() < 2.5, "odd = {odd} mJ");
        assert!((even - 150.0).abs() < 2.5, "even = {even} mJ");
    }

    #[test]
    fn table5_proposed_partition_reconstruction() {
        let roles = proposed_partition(100, 20, 40);
        let odd = total_mj(&roles[0].counts);
        let even = total_mj(&roles[1].counts);
        // Paper: 0.142 J and 0.132 J.
        assert!((odd - 142.0).abs() < 2.5, "odd = {odd} mJ");
        assert!((even - 132.0).abs() < 2.5, "even = {even} mJ");
    }

    #[test]
    fn dynamic_protocols_beat_bd_reexecution() {
        // The paper's headline: 10–100× cheaper than re-running BD.
        for event in DynamicEvent::ALL {
            let bd_max = bd_reexec(event, 100, 20, 20)
                .iter()
                .map(|r| total_mj(&r.counts))
                .fold(0.0f64, f64::max);
            let ours_max = match event {
                DynamicEvent::Join => proposed_join(100),
                DynamicEvent::Leave => proposed_leave(100, 50),
                DynamicEvent::Merge => proposed_merge(100, 20),
                DynamicEvent::Partition => proposed_partition(100, 20, 40),
            }
            .iter()
            .map(|r| total_mj(&r.counts))
            .fold(0.0f64, f64::max);
            assert!(
                bd_max / ours_max > 5.0,
                "{}: BD {bd_max} mJ vs ours {ours_max} mJ",
                event.name()
            );
        }
    }

    #[test]
    fn figure1_proposed_is_cheapest_everywhere() {
        for radio in Transceiver::paper_pair() {
            for n in [10u64, 50, 100, 500] {
                let cpu = CpuModel::strongarm_133();
                let energies: Vec<f64> = InitialProtocol::ALL
                    .iter()
                    .map(|p| {
                        let c = p.per_user_counts(n);
                        comp_energy_mj(&cpu, &c) + comm_energy_mj(&radio, &c)
                    })
                    .collect();
                let proposed = energies[0];
                for (i, &e) in energies.iter().enumerate().skip(1) {
                    assert!(
                        proposed < e,
                        "n={n}, {}: proposed {proposed} !< {} {e}",
                        radio.name,
                        InitialProtocol::ALL[i].name()
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_sok_is_most_expensive_at_scale() {
        let cpu = CpuModel::strongarm_133();
        for radio in Transceiver::paper_pair() {
            let energies: Vec<f64> = InitialProtocol::ALL
                .iter()
                .map(|p| {
                    let c = p.per_user_counts(500);
                    comp_energy_mj(&cpu, &c) + comm_energy_mj(&radio, &c)
                })
                .collect();
            let sok = energies[1];
            for (i, &e) in energies.iter().enumerate() {
                if i != 1 {
                    assert!(sok > e, "SOK must dominate at n=500 on {}", radio.name);
                }
            }
        }
    }

    #[test]
    fn symbolic_tables_have_expected_shape() {
        assert_eq!(table1_symbolic().len(), 9);
        assert_eq!(table4_symbolic().len(), 8);
        assert!(table4_symbolic()[4].msgs == "5");
    }
}
