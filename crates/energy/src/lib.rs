//! # egka-energy
//!
//! The paper's energy cost model, implemented exactly:
//!
//! * [`ops`] — the operation vocabulary (everything Table 2 prices, plus the
//!   operations the paper treats as negligible) and [`ops::OpCounts`]
//!   per-node count vectors;
//! * [`meter`] — thread-safe per-node counters the protocol implementations
//!   record into;
//! * [`cpu`] — Table 2: StrongARM SA-1110 computational energies, including
//!   the paper's P3-450 → StrongARM extrapolation rule (eq. (4));
//! * [`radio`] — Table 3: per-bit transceiver costs (100 kbps sensor radio,
//!   Spectrum24 WLAN) and the paper's canonical wire sizes;
//! * [`complexity`] — closed-form per-user/per-role counts for Tables 1, 4
//!   and 5, cross-checked against instrumented protocol runs by `egka-sim`.
//!
//! Total per-node energy is always `comp_energy(counts) +
//! comm_energy(counts)` — the paper's Figure 1 and Table 5 are exactly these
//! two functions applied to either closed-form or instrumented counts.
//!
//! ```
//! use egka_energy::{total_energy_mj, CpuModel, OpCounts, Transceiver};
//!
//! // 1000 bits on the paper's 100 kbps radio at 10.8 µJ/bit tx: pure
//! // communication energy, no computation counted.
//! let cpu = CpuModel::strongarm_133();
//! let radio = Transceiver::radio_100kbps();
//! let mut counts = OpCounts::new();
//! counts.tx_bits = 1_000;
//! assert!((total_energy_mj(&cpu, &radio, &counts) - 10.8).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod cpu;
pub mod meter;
pub mod ops;
pub mod radio;

pub use complexity::{DynamicEvent, InitialProtocol, RoleCounts};
pub use cpu::{comp_energy_mj, table2_row, CostRow, CpuModel};
pub use meter::Meter;
pub use ops::{CompOp, OpCounts, Scheme, NUM_OPS};
pub use radio::{comm_energy_mj, wire, Transceiver};

/// Total (computational + communication) energy in millijoules of a count
/// vector under a CPU and transceiver model.
pub fn total_energy_mj(cpu: &CpuModel, radio: &Transceiver, counts: &OpCounts) -> f64 {
    comp_energy_mj(cpu, counts) + comm_energy_mj(radio, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_parts() {
        let cpu = CpuModel::strongarm_133();
        let radio = Transceiver::wlan_spectrum24();
        let mut c = OpCounts::new();
        c.add(CompOp::ModExp, 3);
        c.tx_bits = 4160;
        c.rx_bits = 4160 * 9;
        let total = total_energy_mj(&cpu, &radio, &c);
        assert!((total - (comp_energy_mj(&cpu, &c) + comm_energy_mj(&radio, &c))).abs() < 1e-12);
        assert!(total > 0.0);
    }
}
