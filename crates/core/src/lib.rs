//! # egka-core
//!
//! The protocols of Tan & Teo, *"Energy-Efficient ID-based Group Key
//! Agreement Protocols for Wireless Networks"* (IPPS 2006):
//!
//! * [`bd`] — the Burmester–Desmedt arithmetic core every variant shares;
//! * [`proposed`] — the paper's proposal (§4): BD authenticated by the GQ
//!   variant with **batch verification** (eq. (2)) and the Lemma-1 check,
//!   including the "all members retransmit" failure path with fault
//!   injection;
//! * [`authbd`] — the Table 1 baselines: BD signed per-user with SOK
//!   (pairing), ECDSA + certificates, or DSA + certificates;
//! * [`ssn`] — the Saeednia–Safavi-Naini ID-based baseline (2n+4
//!   exponentiations, implicit per-sender authentication);
//! * [`dynamics`] — the four dynamic membership protocols (§7): Join,
//!   Leave, Merge, Partition, using real symmetric envelopes over the
//!   current group key;
//! * [`machine`] — the sans-IO round engine: every protocol above is a
//!   poll-driven [`machine::RoundMachine`] (no endpoint calls inside
//!   protocol logic), pumpable by a scheduler that interleaves many
//!   groups on one thread;
//! * [`mod@suite`] — the protocol-erased boundary: every protocol above
//!   packaged as an object-safe [`suite::Suite`] (stable [`suite::SuiteId`],
//!   boxed pumpable runs for the initial GKA and the §7 dynamics, closed-form
//!   cost hooks) so multi-protocol services program against `dyn Suite`;
//! * [`params`] — the PKG Setup (paper §4) with paper/medium/toy security
//!   profiles and a pinned 1024-bit fixture;
//! * [`group`] — the session state the dynamic protocols consume;
//! * [`wire`], [`ident`], [`par`] — codecs, identities, per-round fan-out.
//!
//! Every protocol executes **for real** — keys are derived by actual
//! modular arithmetic on every simulated node, signatures really verify —
//! over the `egka-net` broadcast medium, with per-node [`egka_energy::Meter`]
//! instrumentation at exactly the granularity the paper's cost model
//! prices. The `egka-sim` crate turns these runs into Figure 1 and
//! Tables 1/4/5.
//!
//! ```
//! use egka_core::{proposed, Pkg, RunConfig, SecurityProfile};
//! use egka_hash::ChaChaRng;
//! use rand::SeedableRng;
//!
//! // A real 4-member run of the paper's proposal (BD + GQ batch
//! // verification) at toy parameters: every member derives the same key.
//! let mut rng = ChaChaRng::seed_from_u64(1);
//! let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
//! let keys = pkg.extract_group(4);
//! let (report, _session) = proposed::run(pkg.params(), &keys, 1, RunConfig::default());
//! assert!(report.keys_agree());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authbd;
pub mod bd;
pub mod dynamics;
pub mod group;
pub mod ident;
pub mod machine;
pub mod par;
pub mod params;
pub mod proposed;
pub mod ssn;
pub mod suite;
pub mod wire;

pub use authbd::AuthKit;
pub use group::{GroupSession, MemberState};
pub use ident::UserId;
pub use machine::{Dest, Faults, Outgoing, Pump, RadioSpec, RoundMachine, SessionKey, Step};
pub use params::{paper_fixture, Params, Pkg, SecurityProfile};
pub use proposed::{Fault, NodeReport, RunConfig, RunReport};
pub use suite::{suite, StepCtx, Suite, SuiteId, SuiteOutcome, SuiteRun};
