//! Sans-IO round engine: poll-driven protocol state machines.
//!
//! Every GKA variant in this crate used to be a *blocking* lock-step
//! driver: per-node threads calling `Endpoint::recv_kind` and panicking on
//! anything out of order. That shape forces a scheduler to run one group's
//! rekey to completion before touching the next — one slow or powered-off
//! member stalls every group sharing the thread.
//!
//! This module is the replacement substrate:
//!
//! * [`RoundMachine`] — the uniform poll API. A machine owns **one node's**
//!   protocol state and never touches an endpoint; it consumes [`Packet`]s
//!   and answers with a [`Step`]: messages to send, "need more input", the
//!   derived [`SessionKey`], or a typed failure.
//! * [`Engine`] — a phased interpreter the concrete protocols are written
//!   against: a protocol is a list of [`Phase`]s (*collect k packets of
//!   round tag t, then act*), and the engine supplies the packet
//!   bookkeeping every machine needs — out-of-round packets are stashed
//!   and replayed when their round starts, so interleaved delivery (the
//!   whole point of sans-IO) cannot crash a protocol.
//! * [`Execution`] — one protocol run: a private [`Medium`], an
//!   [`egka_net::Reactor`] fanning packets to per-node mailboxes, and one
//!   machine per node. `pump` advances the run as far as it can without
//!   blocking and reports whether anything progressed — the primitive a
//!   shard scheduler interleaves round-robin across many groups.
//! * [`Faults`] — loss/detachment injection for liveness testing: a
//!   detached member's machine still runs, but its transmissions vanish,
//!   so its group stalls (and *only* its group — scheduler liveness is
//!   exactly what the tests assert).
//!
//! The machines reproduce the blocking drivers **bit for bit**: identical
//! per-node RNG draw order, identical meter records, identical wire bytes.
//! `tests/poll_equivalence.rs` pins this with goldens captured from the
//! lock-step implementation.

use std::collections::VecDeque;
use std::time::Duration;

use egka_bigint::Ubig;
use egka_energy::{comp_energy_mj, Meter, OpCounts};
use egka_medium::{BatteryBank, RadioMedium, RadioProfile};
use egka_net::{Endpoint, Medium, NetError, NodeId, Packet, Reactor, ReactorEvent, Token};

use crate::ident::UserId;

/// The group key a finished machine derived.
pub type SessionKey = Ubig;

/// Where an outgoing message goes.
#[derive(Clone, Debug)]
pub enum Dest {
    /// Every other attached endpoint on the medium.
    Broadcast,
    /// Exactly one endpoint.
    Unicast(NodeId),
    /// An explicit recipient set (the paper's intended-recipient
    /// accounting; self is skipped if present).
    Multicast(Vec<NodeId>),
}

/// A message a machine wants transmitted.
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// Recipient selector.
    pub to: Dest,
    /// Protocol round tag.
    pub kind: u16,
    /// Serialized payload.
    pub payload: bytes::Bytes,
    /// Paper-accounting size in bits (what the energy model charges).
    pub nominal_bits: u64,
}

/// What a machine wants after a `poll`.
#[derive(Debug)]
pub enum Step {
    /// Transmit these, then poll again.
    Send(Vec<Outgoing>),
    /// Blocked until another packet (or a timeout) arrives.
    NeedMore,
    /// Protocol finished; the node derived this group key.
    Done(SessionKey),
    /// Protocol failed with a network-level error (e.g. a surfaced
    /// deadline). Terminal.
    Failed(NetError),
}

/// A poll-driven protocol state machine for one node. No IO inside: the
/// caller moves packets in and messages out.
pub trait RoundMachine {
    /// Advances as far as possible. `incoming` hands the machine its next
    /// packet (ownership transfers even if the machine only buffers it);
    /// `None` asks it to make progress on what it already has.
    fn poll(&mut self, incoming: Option<Packet>) -> Step;

    /// A deadline expired while the machine was blocked. The default
    /// surfaces the timeout as a terminal failure; protocols with a
    /// retransmission story may restart instead.
    fn on_timeout(&mut self, waited: Duration) -> Step {
        Step::Failed(NetError::Timeout { waited })
    }
}

/// What one phase waits for before its action runs.
#[derive(Clone, Copy, Debug)]
pub enum Collect {
    /// Nothing — the action runs as soon as the phase is reached.
    Immediate,
    /// `count` packets with round tag `kind` (other kinds are stashed for
    /// later phases).
    Kind {
        /// Required round tag.
        kind: u16,
        /// How many packets of that tag to gather.
        count: usize,
    },
}

/// What a phase action decided.
pub enum PhaseOut {
    /// Transmit these (possibly none) and advance to the next phase.
    Send(Vec<Outgoing>),
    /// The protocol completed with this key.
    Done(SessionKey),
    /// Jump back to phase 0 — the "all members retransmit" path. The
    /// stash survives (the next attempt's packets may already be queued).
    Restart,
}

/// A phase's action: node state + gathered packets → decision.
pub type PhaseAction<S> = Box<dyn FnMut(&mut S, Vec<Packet>) -> PhaseOut + Send>;

/// One step of a protocol script: gather, then act.
pub struct Phase<S> {
    /// Input requirement.
    pub collect: Collect,
    /// The action, run over the node state and the gathered packets.
    pub act: PhaseAction<S>,
}

impl<S> Phase<S> {
    /// A phase that acts immediately.
    pub fn immediate(
        act: impl FnMut(&mut S, Vec<Packet>) -> PhaseOut + Send + 'static,
    ) -> Phase<S> {
        Phase {
            collect: Collect::Immediate,
            act: Box::new(act),
        }
    }

    /// A phase gathering `count` packets of `kind` first.
    pub fn gather(
        kind: u16,
        count: usize,
        act: impl FnMut(&mut S, Vec<Packet>) -> PhaseOut + Send + 'static,
    ) -> Phase<S> {
        Phase {
            collect: Collect::Kind { kind, count },
            act: Box::new(act),
        }
    }
}

/// Phased [`RoundMachine`] interpreter: runs a [`Phase`] script over a
/// node-state value, stashing out-of-round packets between phases.
pub struct Engine<S> {
    state: S,
    phases: Vec<Phase<S>>,
    pc: usize,
    gathered: Vec<Packet>,
    stash: VecDeque<Packet>,
    done: Option<SessionKey>,
    failed: Option<NetError>,
}

impl<S> Engine<S> {
    /// Builds a machine from a node state and its protocol script.
    ///
    /// # Panics
    /// Panics if the script is empty.
    pub fn new(state: S, phases: Vec<Phase<S>>) -> Self {
        assert!(!phases.is_empty(), "a protocol script needs phases");
        Engine {
            state,
            phases,
            pc: 0,
            gathered: Vec::new(),
            stash: VecDeque::new(),
            done: None,
            failed: None,
        }
    }

    /// The node state (for report assembly after the run).
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable node state access (test hooks).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Overrides the packet count of the gather spec at script position
    /// `phase` — for fan-ins whose size the builder only knows after a
    /// role census (e.g. Leave's "every member hears every *other*
    /// refresher").
    ///
    /// # Panics
    /// Panics if that phase does not gather.
    pub fn set_gather_count(&mut self, phase: usize, count: usize) {
        match &mut self.phases[phase].collect {
            Collect::Kind { count: c, .. } => *c = count,
            Collect::Immediate => panic!("phase {phase} does not gather"),
        }
    }

    /// The derived key, once [`Step::Done`] was returned.
    pub fn key(&self) -> Option<&SessionKey> {
        self.done.as_ref()
    }

    /// Which script phase the machine is at — the protocol *round* index,
    /// observed by the tracing pump hook. A finished machine reports its
    /// final phase.
    pub fn phase_index(&self) -> usize {
        self.pc
    }

    fn gather_from_stash(&mut self, kind: u16, count: usize) {
        let mut i = 0;
        while self.gathered.len() < count && i < self.stash.len() {
            if self.stash[i].kind == kind {
                let p = self.stash.remove(i).expect("index in bounds");
                self.gathered.push(p);
            } else {
                i += 1;
            }
        }
    }
}

impl<S> RoundMachine for Engine<S> {
    fn poll(&mut self, incoming: Option<Packet>) -> Step {
        if let Some(e) = self.failed {
            return Step::Failed(e);
        }
        if let Some(k) = &self.done {
            return Step::Done(k.clone());
        }
        if let Some(p) = incoming {
            self.stash.push_back(p);
        }
        loop {
            let phase = &mut self.phases[self.pc];
            let packets = match phase.collect {
                Collect::Immediate => Vec::new(),
                Collect::Kind { kind, count } => {
                    self.gather_from_stash(kind, count);
                    if self.gathered.len() < count {
                        return Step::NeedMore;
                    }
                    std::mem::take(&mut self.gathered)
                }
            };
            match (self.phases[self.pc].act)(&mut self.state, packets) {
                PhaseOut::Send(outs) => {
                    self.pc += 1;
                    assert!(
                        self.pc < self.phases.len(),
                        "protocol script fell off the end without Done"
                    );
                    return Step::Send(outs);
                }
                PhaseOut::Done(key) => {
                    self.done = Some(key.clone());
                    return Step::Done(key);
                }
                PhaseOut::Restart => {
                    self.pc = 0;
                    self.gathered.clear();
                }
            }
        }
    }

    fn on_timeout(&mut self, waited: Duration) -> Step {
        if self.done.is_none() && self.failed.is_none() {
            self.failed = Some(NetError::Timeout { waited });
        }
        self.poll(None)
    }
}

/// Node state that exposes its operation meter — every protocol state does,
/// so an [`Execution`] can account even an aborted attempt's energy.
pub trait Metered {
    /// The node's operation meter.
    fn meter(&self) -> &Meter;
}

/// Runs the execution over a virtual-time radio instead of the instant
/// medium: per-link delay, airtime contention at the transceiver's data
/// rate, seeded loss, and battery drain (see `egka-medium`).
#[derive(Clone, Debug)]
pub struct RadioSpec {
    /// Hardware/channel profile. Its `loss` is overridden by
    /// [`Faults::loss`] whenever that is non-zero, so the scheduler's
    /// retry salting applies unchanged on the radio path.
    pub profile: RadioProfile,
    /// Seed for the radio's jitter/loss stream (mixed with
    /// [`Faults::loss_seed`] so retried attempts re-roll the air).
    pub seed: u64,
    /// Battery budgets shared across executions; `None` runs on mains
    /// power. A user whose cell is already drained joins powered off —
    /// battery death persists across protocol steps.
    pub bank: Option<BatteryBank>,
}

/// Fault injection for a protocol execution.
#[derive(Clone, Debug, Default)]
pub struct Faults {
    /// Per-delivery drop probability on the run's medium.
    pub loss: f64,
    /// Seed for the loss pattern (salted per retry so a retransmitted
    /// attempt does not replay the identical drops).
    pub loss_seed: u64,
    /// Members that are powered off: their machines run, but nothing they
    /// transmit reaches the medium and nothing reaches them.
    pub detached: Vec<UserId>,
    /// When set, the run's medium is a virtual-time radio instead of the
    /// instant fan-out channel.
    pub radio: Option<RadioSpec>,
    /// Purely observational trace hook: when set, the execution reports
    /// round transitions (and the radio reports airtime) into this shared
    /// buffer. Never consulted by any fault or scheduling decision, so
    /// attaching it cannot change a run's outcome.
    pub trace: Option<egka_trace::StepTrace>,
    /// Fan the per-node machine work of every [`Execution::pump`] across
    /// threads. Safe under any fault mix — a sweep's sends are buffered
    /// per node and dispatched in node-index order after the machines
    /// join, so the medium (and therefore the loss draws, the radio
    /// schedule and the trace stream) sees exactly the sequential order.
    pub parallel: bool,
}

impl Faults {
    /// Reliable medium, everyone attached.
    pub fn none() -> Self {
        Faults::default()
    }

    /// True iff no fault is armed and the medium is the instant channel.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0 && self.detached.is_empty() && self.radio.is_none()
    }
}

/// How far one [`Execution::pump`] got.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pump {
    /// Every machine finished.
    Done,
    /// Something moved (packets delivered, messages sent, a machine
    /// finished) — pump again.
    Progressed,
    /// Nothing can move: no packets in flight, every unfinished machine
    /// blocked. On a private medium this is permanent — the scheduler
    /// should time the run out or retry it.
    Stalled,
    /// A machine failed (e.g. a surfaced timeout). Terminal.
    Failed(NetError),
}

/// One in-flight protocol run: a private medium, a reactor fanning packets
/// into per-node mailboxes, and one machine per node.
pub struct Execution<S> {
    medium: Medium,
    /// Virtual-time radio beneath `medium` when [`Faults::radio`] is set;
    /// `pump` advances its clock whenever the machines are otherwise
    /// blocked on in-flight airtime.
    radio: Option<RadioMedium>,
    /// Node order → user id, for battery accounting.
    users: Vec<UserId>,
    /// Compute energy (mJ) already debited per node, so each pump charges
    /// only the delta since the last sweep.
    comp_mj_charged: Vec<f64>,
    reactor: Reactor,
    tokens: Vec<Token>,
    machines: Vec<Engine<S>>,
    keys: Vec<Option<SessionKey>>,
    failed: Option<NetError>,
    /// Observational trace hook (from [`Faults::trace`]); `last_round` and
    /// `sweeps` drive round-transition detection and the off-radio
    /// pseudo-clock.
    trace: Option<egka_trace::StepTrace>,
    last_round: Option<usize>,
    sweeps: u64,
    /// From [`Faults::parallel`]: fan machine sweeps across threads.
    parallel: bool,
}

impl<S: Send + Metered> Execution<S> {
    /// Builds a run: joins `ids.len()` endpoints on a fresh medium,
    /// applies `faults`, and constructs each node's machine via `mk`
    /// (called with the node index and the slice of all net ids, in node
    /// order — machines address peers through it).
    pub fn new(
        ids: &[UserId],
        faults: &Faults,
        mut mk: impl FnMut(usize, &[NodeId]) -> Engine<S>,
    ) -> Self {
        let radio = faults.radio.as_ref().map(|spec| {
            let mut profile = spec.profile.clone();
            if faults.loss > 0.0 {
                // The scheduler's loss (and its per-retry salt) wins over
                // the profile default, so retries re-roll the air.
                profile.loss = faults.loss;
            }
            let bank = spec.bank.clone().unwrap_or_default();
            let radio = RadioMedium::with_bank(profile, spec.seed ^ faults.loss_seed, bank);
            if let Some(trace) = &faults.trace {
                radio.set_trace(trace.clone());
            }
            radio
        });
        let medium = match &radio {
            Some(r) => r.net().clone(),
            None => Medium::new(),
        };
        if faults.loss > 0.0 && radio.is_none() {
            medium.set_loss_seeded(faults.loss, faults.loss_seed);
        }
        let mut reactor = Reactor::new();
        let mut tokens = Vec::with_capacity(ids.len());
        let mut net_ids = Vec::with_capacity(ids.len());
        for id in ids {
            let ep = match &radio {
                Some(r) => r.join(id.0),
                None => medium.join(),
            };
            net_ids.push(ep.id());
            if faults.detached.contains(id) {
                medium.detach(ep.id());
            }
            tokens.push(reactor.register(ep));
        }
        let machines = (0..ids.len()).map(|i| mk(i, &net_ids)).collect();
        Execution {
            medium,
            radio,
            users: ids.to_vec(),
            comp_mj_charged: vec![0.0; ids.len()],
            reactor,
            tokens,
            keys: vec![None; ids.len()],
            machines,
            failed: None,
            trace: faults.trace.clone(),
            last_round: None,
            sweeps: 0,
            parallel: faults.parallel,
        }
    }

    /// Number of nodes in the run.
    pub fn n(&self) -> usize {
        self.machines.len()
    }

    /// True iff every machine returned [`Step::Done`].
    pub fn is_done(&self) -> bool {
        self.failed.is_none() && self.keys.iter().all(|k| k.is_some())
    }

    /// The failure that terminated the run, if any.
    pub fn failure(&self) -> Option<NetError> {
        self.failed
    }

    /// The medium's traffic counters for node `i`.
    pub fn traffic(&self, i: usize) -> egka_net::TrafficStats {
        self.medium
            .stats(self.reactor.endpoint(self.tokens[i]).id())
    }

    /// The machine (and through it the node state) of node `i`.
    pub fn machine(&self, i: usize) -> &Engine<S> {
        &self.machines[i]
    }

    /// The key node `i` derived, if it finished.
    pub fn key(&self, i: usize) -> Option<&SessionKey> {
        self.keys[i].as_ref()
    }

    /// Arms a silence deadline on every node; an expiry fails the stalled
    /// machine with [`NetError::Timeout`] at the next pump.
    ///
    /// On a radio execution the deadline is armed on the **virtual
    /// clock** — a run simulating a slow channel must never time out
    /// because the host was slow, so wall-clock deadlines are ignored
    /// there.
    pub fn set_deadline(&mut self, timeout: Option<Duration>) {
        match &self.radio {
            Some(radio) => {
                let now = radio.now_ns();
                for &t in &self.tokens {
                    self.reactor
                        .set_virtual_deadline(t, now, timeout.map(|d| d.as_nanos() as u64));
                }
            }
            None => {
                for &t in &self.tokens {
                    self.reactor.set_deadline(t, timeout);
                }
            }
        }
    }

    /// The radio beneath this execution, if it runs on virtual time.
    pub fn radio(&self) -> Option<&RadioMedium> {
        self.radio.as_ref()
    }

    /// Virtual milliseconds elapsed on the run's radio clock (`None` on an
    /// instant medium).
    pub fn virtual_now_ms(&self) -> Option<f64> {
        self.radio.as_ref().map(|r| r.now_ms())
    }

    /// Debits each node's battery for compute energy accrued since the
    /// last sweep (radio executions only — the instant medium has no
    /// batteries).
    fn charge_compute(&mut self) {
        let Some(radio) = &self.radio else {
            return;
        };
        let cpu = radio.profile().cpu.clone();
        for i in 0..self.machines.len() {
            let mj = comp_energy_mj(&cpu, &self.machines[i].state().meter().snapshot());
            let delta = mj - self.comp_mj_charged[i];
            if delta > 0.0 {
                self.comp_mj_charged[i] = mj;
                radio.debit_compute_mj(self.users[i].0, delta);
            }
        }
    }

    fn dispatch(ep: &Endpoint, outs: Vec<Outgoing>) {
        for o in outs {
            match o.to {
                Dest::Broadcast => ep.broadcast(o.kind, o.payload, o.nominal_bits),
                Dest::Unicast(to) => ep.unicast(to, o.kind, o.payload, o.nominal_bits),
                Dest::Multicast(ts) => ep.multicast(&ts, o.kind, o.payload, o.nominal_bits),
            }
        }
    }

    /// Feeds `packets` and then polls machine `i` until it blocks; sends
    /// accumulate into `out` in poll order (the caller dispatches them —
    /// the machine cannot observe the medium mid-sweep, so deferring the
    /// dispatch to the end of the node's poll loop is exact). Returns
    /// whether the node progressed; records a terminal failure in
    /// `failed`.
    fn pump_node(
        machine: &mut Engine<S>,
        key: &mut Option<SessionKey>,
        packets: Vec<Packet>,
        timed_out: Option<Duration>,
        failed: &mut Option<NetError>,
        out: &mut Vec<Outgoing>,
    ) -> bool {
        if key.is_some() {
            return false;
        }
        let mut progressed = false;
        let mut inbox = packets.into_iter();
        if let Some(waited) = timed_out {
            // A reactor deadline expired for this node while it was
            // blocked; surface it through the machine's timeout hook with
            // the duration the reactor actually waited.
            match machine.on_timeout(waited) {
                Step::Failed(e) => {
                    *failed = Some(e);
                    return true;
                }
                Step::Done(k) => {
                    *key = Some(k);
                    return true;
                }
                _ => progressed = true,
            }
        }
        loop {
            let pkt = inbox.next();
            let had_packet = pkt.is_some();
            match machine.poll(pkt) {
                Step::Send(outs) => {
                    progressed = true;
                    out.extend(outs);
                }
                Step::NeedMore => {
                    if had_packet {
                        progressed = true; // buffered for a later round
                    } else {
                        return progressed;
                    }
                }
                Step::Done(k) => {
                    *key = Some(k);
                    return true;
                }
                Step::Failed(e) => {
                    *failed = Some(e);
                    return true;
                }
            }
        }
    }

    /// One non-blocking scheduling sweep: fan arrived packets to their
    /// mailboxes, then give every unfinished machine a chance to consume
    /// and send. Never waits; interleave freely with other executions.
    ///
    /// On a radio execution the sweep also keeps the air moving: sends
    /// are scheduled onto the channel, batteries are debited, and — when
    /// the machines are otherwise blocked — the virtual clock advances to
    /// the next delivery, which counts as progress. `Stalled` therefore
    /// still means what schedulers rely on: nothing in flight, nobody can
    /// move, permanently.
    pub fn pump(&mut self) -> Pump {
        self.pump_impl(self.parallel)
    }

    /// One sweep with `parallel` machine fan-out. Both modes produce the
    /// bit-identical event stream: the reactor only fills mailboxes at the
    /// top of a sweep (mid-sweep sends sit in endpoint channels until the
    /// next `poll_all`), so machines cannot observe each other within a
    /// sweep, and the parallel mode dispatches each node's buffered sends
    /// in node-index order after the machines join — the same medium
    /// interaction order (loss draws, radio schedule, trace events) as the
    /// sequential loop.
    fn pump_impl(&mut self, parallel: bool) -> Pump {
        if let Some(e) = self.failed {
            return Pump::Failed(e);
        }
        if self.is_done() {
            return Pump::Done;
        }
        self.sweeps += 1;
        let events = match &self.radio {
            Some(radio) => self.reactor.poll_all_at(radio.now_ns()),
            None => self.reactor.poll_all(),
        };
        let mut timeouts: Vec<Option<Duration>> = vec![None; self.machines.len()];
        for ev in events {
            if let ReactorEvent::TimedOut(token, NetError::Timeout { waited }) = ev {
                if let Some(i) = self.tokens.iter().position(|&t| t == token) {
                    timeouts[i] = Some(waited);
                }
            }
        }
        let mut progressed = false;
        if parallel && self.machines.len() > 1 && timeouts.iter().all(Option::is_none) {
            // Parallel sweep. Timeout sweeps stay sequential: a surfaced
            // timeout stops the sweep at the failing node, and later
            // nodes' meters must not advance past that point.
            let inboxes: Vec<Vec<Packet>> =
                self.tokens.iter().map(|&t| self.reactor.drain(t)).collect();
            struct NodeCell<'a, S> {
                machine: &'a mut Engine<S>,
                key: &'a mut Option<SessionKey>,
                inbox: Vec<Packet>,
                out: Vec<Outgoing>,
                failed: Option<NetError>,
                progressed: bool,
            }
            let mut cells: Vec<NodeCell<'_, S>> = self
                .machines
                .iter_mut()
                .zip(self.keys.iter_mut())
                .zip(inboxes)
                .map(|((machine, key), inbox)| NodeCell {
                    machine,
                    key,
                    inbox,
                    out: Vec::new(),
                    failed: None,
                    progressed: false,
                })
                .collect();
            crate::par::par_for_each_mut(&mut cells, |_, cell| {
                cell.progressed = Self::pump_node(
                    cell.machine,
                    cell.key,
                    std::mem::take(&mut cell.inbox),
                    None,
                    &mut cell.failed,
                    &mut cell.out,
                );
            });
            // Join barrier passed: replay per-node outcomes in node-index
            // order — sends, then the *lowest* failing node wins (the
            // sequential loop would have stopped there).
            for (i, cell) in cells.into_iter().enumerate() {
                progressed |= cell.progressed;
                Self::dispatch(self.reactor.endpoint(self.tokens[i]), cell.out);
                if let Some(e) = cell.failed {
                    self.failed = Some(e);
                    return Pump::Failed(e);
                }
            }
        } else {
            for (i, &fired) in timeouts.iter().enumerate() {
                let packets = self.reactor.drain(self.tokens[i]);
                if packets.is_empty() && fired.is_none() && self.keys[i].is_some() {
                    continue;
                }
                let mut out = Vec::new();
                progressed |= Self::pump_node(
                    &mut self.machines[i],
                    &mut self.keys[i],
                    packets,
                    fired,
                    &mut self.failed,
                    &mut out,
                );
                Self::dispatch(self.reactor.endpoint(self.tokens[i]), out);
                if let Some(e) = self.failed {
                    return Pump::Failed(e);
                }
            }
        }
        if self.radio.is_some() {
            self.charge_compute();
            let radio = self.radio.as_ref().expect("checked above");
            radio.pump_air();
            if !progressed && !self.is_done() {
                if radio.advance().is_some() {
                    progressed = true;
                } else if let Some(at) = self.reactor.next_virtual_deadline() {
                    // Quiet air, armed timer: the deadline itself is the
                    // next discrete event — jump the clock onto it so the
                    // next poll fires it.
                    radio.advance_to(at);
                    progressed = true;
                }
            }
        }
        self.trace_rounds();
        if self.is_done() {
            if let Some(trace) = &self.trace {
                trace.finish_rounds(self.trace_rel_ns());
            }
            Pump::Done
        } else if progressed {
            Pump::Progressed
        } else {
            Pump::Stalled
        }
    }

    /// The step-relative virtual clock the trace hook stamps events with:
    /// the radio's clock when there is one, a pump-sweep pseudo-clock on
    /// the instant medium (rounds still order correctly, they just have
    /// no physical duration).
    fn trace_rel_ns(&self) -> u64 {
        match &self.radio {
            Some(r) => r.now_ns(),
            None => self.sweeps * egka_trace::SWEEP_NS,
        }
    }

    /// Reports the execution's current round — the furthest phase index
    /// any machine reached — whenever it changes (including `Restart`
    /// resets, which re-open an earlier round).
    fn trace_rounds(&mut self) {
        let Some(trace) = &self.trace else {
            return;
        };
        let round = self
            .machines
            .iter()
            .map(Engine::phase_index)
            .max()
            .unwrap_or(0);
        if self.last_round != Some(round) {
            trace.round_transition(round as u32, self.trace_rel_ns());
            self.last_round = Some(round);
        }
    }

    /// Like [`Execution::pump`] but always fanning the per-node machine
    /// work across threads (`crate::par`), regardless of
    /// [`Faults::parallel`] — the blocking `run()` wrappers use this to
    /// keep the big-sweep wall-clock of the lock-step drivers. Radio and
    /// trace runs are parallel too: buffered in-order dispatch makes the
    /// channel schedule and event stream bit-identical to [`Execution::pump`]
    /// (pinned by the `pump_parallel_matches_sequential_*` tests).
    pub fn pump_par(&mut self) -> Pump {
        self.pump_impl(true)
    }

    /// Drives the run to completion with parallel sweeps (reliable-medium
    /// path used by the blocking `run()` wrappers).
    ///
    /// # Panics
    /// Panics if the run stalls or fails — on a fault-free private medium
    /// either indicates a protocol scripting bug.
    pub fn run_to_completion(&mut self) {
        loop {
            match self.pump_par() {
                Pump::Done => return,
                Pump::Progressed => {}
                Pump::Stalled => panic!("protocol stalled on a reliable medium"),
                Pump::Failed(e) => panic!("protocol failed on a reliable medium: {e}"),
            }
        }
    }
}

impl<S: Send + Metered> Execution<S> {
    /// Sums every node's metered operations *and* medium traffic — valid
    /// mid-run, which is how an aborted (stalled/timed-out) attempt's
    /// retransmission energy gets charged.
    pub fn partial_counts(&self) -> OpCounts {
        let mut total = OpCounts::new();
        for i in 0..self.n() {
            let mut c = self.machines[i].state().meter().snapshot();
            let t = self.traffic(i);
            c.tx_bits = t.tx_bits;
            c.rx_bits = t.rx_bits;
            c.tx_bits_actual = t.tx_bits_actual;
            c.rx_bits_actual = t.rx_bits_actual;
            c.msgs_tx = t.msgs_tx;
            c.msgs_rx = t.msgs_rx;
            total.merge(&c);
        }
        total
    }

    /// Per-node counts (meter + traffic), the shape every `NodeReport`
    /// carries.
    pub fn node_counts(&self, i: usize) -> OpCounts {
        let mut c = self.machines[i].state().meter().snapshot();
        let t = self.traffic(i);
        c.tx_bits = t.tx_bits;
        c.rx_bits = t.rx_bits;
        c.tx_bits_actual = t.tx_bits_actual;
        c.rx_bits_actual = t.rx_bits_actual;
        c.msgs_tx = t.msgs_tx;
        c.msgs_rx = t.msgs_rx;
        c
    }
}

/// Builds the standard two-broadcast-round script shared by the proposed,
/// SSN and authenticated-BD protocols, with the paper's controller-last
/// Round-2 ordering:
///
/// 1. announce (Round 1 broadcast);
/// 2. gather the other `n−1` Round-1 messages, derive Round-2 values —
///    non-controllers broadcast theirs immediately;
/// 3. gather the other `n−1` Round-2 messages — the controller, having
///    heard everyone, broadcasts *last*;
/// 4. verify and derive (may restart the whole script: "all members
///    retransmit").
#[allow(clippy::too_many_arguments)] // one closure per protocol hook, by design
pub(crate) fn two_round_script<S: 'static>(
    idx: usize,
    round1_kind: u16,
    round2_kind: u16,
    n: usize,
    mut announce: impl FnMut(&mut S) -> Outgoing + Send + 'static,
    mut absorb_round1: impl FnMut(&mut S, &[Packet]) + Send + 'static,
    mut round2_msg: impl FnMut(&mut S) -> Outgoing + Send + 'static,
    mut absorb_round2: impl FnMut(&mut S, &[Packet]) + Send + 'static,
    mut finalize: impl FnMut(&mut S) -> PhaseOut + Send + 'static,
) -> Vec<Phase<S>> {
    type Round2Hook<S> = Box<dyn FnMut(&mut S) -> Option<Outgoing> + Send>;
    let controller = idx == 0;
    let mut round2_msg2 = None;
    let mut round2_for_p1: Round2Hook<S> = if controller {
        round2_msg2 = Some(round2_msg);
        Box::new(|_s| None)
    } else {
        Box::new(move |s| Some(round2_msg(s)))
    };
    vec![
        Phase::immediate(move |s: &mut S, _| PhaseOut::Send(vec![announce(s)])),
        Phase::gather(round1_kind, n - 1, move |s, pkts| {
            absorb_round1(s, &pkts);
            PhaseOut::Send(round2_for_p1(s).into_iter().collect())
        }),
        Phase::gather(round2_kind, n - 1, move |s, pkts| {
            absorb_round2(s, &pkts);
            PhaseOut::Send(match &mut round2_msg2 {
                Some(f) => vec![f(s)],
                None => Vec::new(),
            })
        }),
        Phase::immediate(move |s, _| finalize(s)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    struct Echo {
        meter: Meter,
        n: usize,
    }

    impl Metered for Echo {
        fn meter(&self) -> &Meter {
            &self.meter
        }
    }

    /// A toy 1-round protocol: broadcast a byte, gather n−1, "derive" the
    /// sum as the key.
    fn echo_engine(idx: usize, n: usize) -> Engine<Echo> {
        Engine::new(
            Echo {
                meter: Meter::new(),
                n,
            },
            vec![
                Phase::immediate(move |_s: &mut Echo, _| {
                    PhaseOut::Send(vec![Outgoing {
                        to: Dest::Broadcast,
                        kind: 1,
                        payload: Bytes::from(vec![idx as u8]),
                        nominal_bits: 8,
                    }])
                }),
                Phase::gather(1, n - 1, move |s: &mut Echo, pkts| {
                    let sum: u64 =
                        pkts.iter().map(|p| u64::from(p.payload[0])).sum::<u64>() + idx as u64;
                    let _ = s.n;
                    PhaseOut::Done(Ubig::from_u64(sum))
                }),
            ],
        )
    }

    #[test]
    fn execution_runs_toy_protocol_to_agreement() {
        let ids: Vec<UserId> = (0..4).map(UserId).collect();
        let mut exec = Execution::new(&ids, &Faults::none(), |i, _| echo_engine(i, 4));
        while exec.pump() == Pump::Progressed {}
        assert!(exec.is_done());
        let want = Ubig::from_u64(6); // 0 + 1 + 2 + 3
        for i in 0..4 {
            assert_eq!(exec.key(i), Some(&want));
        }
    }

    #[test]
    fn engine_stashes_out_of_round_packets() {
        let mut m = echo_engine(0, 3);
        // First poll emits the announce.
        assert!(matches!(m.poll(None), Step::Send(_)));
        // A packet from a *future* round (kind 9) arrives first: stashed.
        let stray = Packet {
            from: 7,
            kind: 9,
            payload: Bytes::from_static(&[9]),
            nominal_bits: 8,
        };
        assert!(matches!(m.poll(Some(stray)), Step::NeedMore));
        // The two round-1 packets complete the machine regardless.
        for b in [1u8, 2] {
            let p = Packet {
                from: u32::from(b),
                kind: 1,
                payload: Bytes::from(vec![b]),
                nominal_bits: 8,
            };
            match m.poll(Some(p)) {
                Step::NeedMore => assert_eq!(b, 1),
                Step::Done(k) => assert_eq!(k, Ubig::from_u64(3)),
                other => panic!("unexpected step {other:?}"),
            }
        }
    }

    #[test]
    fn detached_member_stalls_only_its_run() {
        let ids: Vec<UserId> = (0..3).map(UserId).collect();
        let faults = Faults {
            detached: vec![UserId(1)],
            ..Faults::default()
        };
        let mut stalled = Execution::new(&ids, &faults, |i, _| echo_engine(i, 3));
        let mut healthy = Execution::new(&ids, &Faults::none(), |i, _| echo_engine(i, 3));
        // Interleave: healthy finishes, stalled reports Stalled forever.
        loop {
            let h = healthy.pump();
            let s = stalled.pump();
            if h == Pump::Done {
                assert_ne!(s, Pump::Done, "node 1's silence must stall the run");
                break;
            }
        }
        // Once nothing is in flight, the stall is stable and permanent.
        for _ in 0..3 {
            assert_eq!(stalled.pump(), Pump::Stalled);
        }
        assert!(!stalled.is_done());
    }

    #[test]
    fn deadline_surfaces_timeout_into_the_machines() {
        let ids: Vec<UserId> = (0..3).map(UserId).collect();
        let faults = Faults {
            detached: vec![UserId(2)],
            ..Faults::default()
        };
        let mut exec = Execution::new(&ids, &faults, |i, _| echo_engine(i, 3));
        exec.set_deadline(Some(Duration::from_millis(1)));
        while exec.pump() == Pump::Progressed {}
        std::thread::sleep(Duration::from_millis(5));
        match exec.pump() {
            Pump::Failed(NetError::Timeout { waited }) => {
                // The armed deadline, not a placeholder, reaches the error.
                assert_eq!(waited, Duration::from_millis(1));
            }
            other => panic!("expected surfaced timeout, got {other:?}"),
        }
        assert!(matches!(exec.failure(), Some(NetError::Timeout { .. })));
    }

    #[test]
    fn radio_execution_agrees_and_spends_virtual_time() {
        let ids: Vec<UserId> = (0..4).map(UserId).collect();
        let faults = Faults {
            radio: Some(RadioSpec {
                profile: RadioProfile::sensor_100kbps(),
                seed: 0xa1,
                bank: None,
            }),
            ..Faults::default()
        };
        let mut exec = Execution::new(&ids, &faults, |i, _| echo_engine(i, 4));
        while exec.pump() == Pump::Progressed {}
        assert!(exec.is_done(), "radio pacing must not change the outcome");
        let want = Ubig::from_u64(6);
        for i in 0..4 {
            assert_eq!(exec.key(i), Some(&want));
        }
        // Four 8-bit announcements serialized at 100 kbps = 4 × 0.08 ms of
        // airtime, plus ≥ 2 ms of link delay on the last delivery.
        let t = exec.virtual_now_ms().expect("radio clock");
        assert!(t >= 0.32 + 2.0, "virtual time {t} ms too small");
        // Batteries were debited (mains bank: accounted, nobody dies).
        let bank = exec.radio().unwrap().bank().clone();
        assert!(bank.spent_uj(0) > 0.0);
    }

    #[test]
    fn ideal_radio_reproduces_the_instant_medium_bit_for_bit() {
        let ids: Vec<UserId> = (0..5).map(UserId).collect();
        let run = |faults: &Faults| {
            let mut exec = Execution::new(&ids, faults, |i, _| echo_engine(i, 5));
            while exec.pump() == Pump::Progressed {}
            assert!(exec.is_done());
            let keys: Vec<_> = (0..5).map(|i| exec.key(i).cloned()).collect();
            let counts = exec.partial_counts();
            (keys, counts)
        };
        let instant = run(&Faults::none());
        let radio = run(&Faults {
            radio: Some(RadioSpec {
                profile: RadioProfile::ideal(),
                seed: 9,
                bank: None,
            }),
            ..Faults::default()
        });
        assert_eq!(instant, radio);
    }

    #[test]
    fn battery_death_stalls_the_run_through_the_detach_path() {
        // Node 1 can afford its own transmission but not much reception:
        // it browns out mid-protocol and the run stalls exactly like a
        // detached member — the fault the schedulers already survive.
        let bank = BatteryBank::infinite();
        bank.set_capacity(1, 200.0); // µJ; one 8-bit tx ≈ 86.4, one rx ≈ 60
        let ids: Vec<UserId> = (0..3).map(UserId).collect();
        let faults = Faults {
            radio: Some(RadioSpec {
                profile: RadioProfile::sensor_100kbps(),
                seed: 4,
                bank: Some(bank.clone()),
            }),
            ..Faults::default()
        };
        let mut exec = Execution::new(&ids, &faults, |i, _| echo_engine(i, 3));
        while exec.pump() == Pump::Progressed {}
        assert!(!exec.is_done(), "a dead member cannot finish");
        assert_eq!(exec.pump(), Pump::Stalled, "permanent, like detachment");
        assert!(bank.is_dead(1));
        assert!(!bank.is_dead(0));
        // A later execution over the same bank sees the death immediately:
        // the user joins powered off.
        let mut next = Execution::new(&ids, &faults, |i, _| echo_engine(i, 3));
        while next.pump() == Pump::Progressed {}
        assert!(!next.is_done());
    }

    #[test]
    fn radio_deadline_fires_on_the_virtual_clock() {
        let ids: Vec<UserId> = (0..3).map(UserId).collect();
        let faults = Faults {
            detached: vec![UserId(2)],
            radio: Some(RadioSpec {
                profile: RadioProfile::sensor_100kbps(),
                seed: 5,
                bank: None,
            }),
            ..Faults::default()
        };
        let mut exec = Execution::new(&ids, &faults, |i, _| echo_engine(i, 3));
        exec.set_deadline(Some(Duration::from_millis(50)));
        loop {
            match exec.pump() {
                Pump::Progressed => {}
                Pump::Failed(NetError::Timeout { waited }) => {
                    assert_eq!(waited, Duration::from_millis(50));
                    break;
                }
                other => panic!("expected a virtual timeout, got {other:?}"),
            }
        }
    }

    /// Drives an echo run with either pump flavor and snapshots everything
    /// observable: per-node keys, merged op counts, the virtual clock and
    /// the drained trace events (timestamps included).
    #[allow(clippy::type_complexity)]
    fn echo_run(
        faults: &Faults,
        n: usize,
        par: bool,
    ) -> (
        Vec<Option<Ubig>>,
        OpCounts,
        Option<f64>,
        Vec<egka_trace::Event>,
    ) {
        let ids: Vec<UserId> = (0..n as u32).map(UserId).collect();
        let mut exec = Execution::new(&ids, faults, |i, _| echo_engine(i, n));
        loop {
            let p = if par { exec.pump_par() } else { exec.pump() };
            if p != Pump::Progressed {
                break;
            }
        }
        let keys = (0..n).map(|i| exec.key(i).cloned()).collect();
        let counts = exec.partial_counts();
        let clock = exec.virtual_now_ms();
        let events = faults.trace.as_ref().map(|t| t.drain()).unwrap_or_default();
        (keys, counts, clock, events)
    }

    #[test]
    fn parallel_pump_matches_sequential_under_loss() {
        // Seeded loss on the instant medium: the loss draws happen at
        // dispatch time, so this pins the parallel sweep's in-order
        // buffered dispatch (a reordered dispatch would shuffle which
        // deliveries drop).
        for seed in [1u64, 7, 0xbeef] {
            let faults = Faults {
                loss: 0.35,
                loss_seed: seed,
                ..Faults::default()
            };
            assert_eq!(
                echo_run(&faults, 5, false),
                echo_run(&faults, 5, true),
                "loss seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_pump_matches_sequential_on_radio_with_trace() {
        // Radio + trace used to force the sequential fallback; now the
        // parallel sweep must reproduce the channel schedule and the
        // traced event stream bit for bit, virtual timestamps included.
        let mk_faults = || Faults {
            radio: Some(RadioSpec {
                profile: RadioProfile::sensor_100kbps(),
                seed: 0x77,
                bank: None,
            }),
            trace: Some(egka_trace::StepTrace::new(1, 42, 10_000)),
            ..Faults::default()
        };
        let seq_faults = mk_faults();
        let par_faults = mk_faults();
        let seq = echo_run(&seq_faults, 6, false);
        let par = echo_run(&par_faults, 6, true);
        assert_eq!(seq.0, par.0, "keys");
        assert_eq!(seq.1, par.1, "op counts");
        assert_eq!(seq.2, par.2, "virtual clock");
        assert_eq!(seq.3, par.3, "trace event streams (with timestamps)");
        assert!(!seq.3.is_empty(), "trace must have recorded rounds");
    }

    #[test]
    fn faults_parallel_flag_routes_pump_through_the_parallel_sweep() {
        let faults = Faults {
            loss: 0.2,
            loss_seed: 3,
            parallel: true,
            ..Faults::default()
        };
        let sequential = Faults {
            loss: 0.2,
            loss_seed: 3,
            ..Faults::default()
        };
        // `pump()` with the flag ≡ `pump()` without it: the flag may only
        // change wall-clock, never observable state.
        assert_eq!(echo_run(&faults, 4, false), echo_run(&sequential, 4, false));
    }

    #[test]
    fn parallel_pump_surfaces_deadline_timeouts() {
        // The old pump_par dropped reactor timeout events; the unified
        // sweep must fail the run exactly like the sequential pump.
        let ids: Vec<UserId> = (0..3).map(UserId).collect();
        let faults = Faults {
            detached: vec![UserId(2)],
            ..Faults::default()
        };
        let mut exec = Execution::new(&ids, &faults, |i, _| echo_engine(i, 3));
        exec.set_deadline(Some(Duration::from_millis(1)));
        while exec.pump_par() == Pump::Progressed {}
        std::thread::sleep(Duration::from_millis(5));
        match exec.pump_par() {
            Pump::Failed(NetError::Timeout { waited }) => {
                assert_eq!(waited, Duration::from_millis(1));
            }
            other => panic!("expected surfaced timeout, got {other:?}"),
        }
    }

    #[test]
    fn partial_counts_account_an_aborted_attempt() {
        let ids: Vec<UserId> = (0..3).map(UserId).collect();
        let faults = Faults {
            detached: vec![UserId(0)],
            ..Faults::default()
        };
        let mut exec = Execution::new(&ids, &faults, |i, _| echo_engine(i, 3));
        while exec.pump() == Pump::Progressed {}
        assert!(!exec.is_done());
        // Nodes 1 and 2 still transmitted their announcements.
        let counts = exec.partial_counts();
        assert_eq!(counts.msgs_tx, 2);
    }
}
