//! Wire encoding helpers and message-kind tags.
//!
//! Real payload bytes travel over `egka-net`; the *accounting* size of each
//! message is the paper's nominal size (from `egka_energy::wire` and
//! `egka_energy::complexity`), passed separately as `nominal_bits`. The
//! encodings here are honest little codecs (length-prefixed big-endian
//! integers), so the "actual bits" column of the reports reflects a real
//! serialization rather than the paper's idealized sizes.

use bytes::Bytes;
use egka_bigint::Ubig;

use crate::ident::UserId;

/// Message kinds, one namespace across all protocols (a node participates
/// in exactly one protocol run at a time; rounds are strictly ordered).
pub mod kind {
    /// Initial GKA Round 1 broadcast `m_i`.
    pub const ROUND1: u16 = 1;
    /// Initial GKA Round 2 broadcast `m'_i`.
    pub const ROUND2: u16 = 2;
    /// "All members retransmit" — repeat of Round 1 after a failed check.
    pub const RETRY_ROUND1: u16 = 3;
    /// Repeat of Round 2 after a failed check.
    pub const RETRY_ROUND2: u16 = 4;

    /// Join Round 1: the newcomer's announcement `m_{n+1}`.
    pub const JOIN_ANNOUNCE: u16 = 10;
    /// Join Round 2: controller's `m'_1`.
    pub const JOIN_CONTROLLER: u16 = 11;
    /// Join Round 2: sponsor's `m''_n`.
    pub const JOIN_SPONSOR: u16 = 12;
    /// Join Round 3: sponsor → newcomer unicast `m'''_n`.
    pub const JOIN_HANDOFF: u16 = 13;

    /// Merge Round 1 controller broadcast (`m'_1` / `m'_{n+1}`).
    pub const MERGE_R1: u16 = 20;
    /// Merge Round 2 controller broadcast (`m''`).
    pub const MERGE_R2: u16 = 21;
    /// Merge Round 3 controller broadcast (`m'''`).
    pub const MERGE_R3: u16 = 22;

    /// Leave/Partition Round 1 (odd-indexed refresh).
    pub const LP_ROUND1: u16 = 30;
    /// Leave/Partition Round 2.
    pub const LP_ROUND2: u16 = 31;
}

/// Encoding error (truncated or malformed buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of what failed.
    pub what: &'static str,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "malformed message: {}", self.what)
    }
}

impl std::error::Error for DecodeError {}

/// A byte-buffer writer for protocol messages.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a 32-bit identity.
    pub fn put_id(&mut self, id: UserId) -> &mut Self {
        self.buf.extend_from_slice(&id.to_bytes());
        self
    }

    /// Appends a length-prefixed big-endian integer (u16 length).
    pub fn put_ubig(&mut self, v: &Ubig) -> &mut Self {
        let bytes = v.to_bytes_be();
        debug_assert!(bytes.len() <= u16::MAX as usize);
        self.buf
            .extend_from_slice(&(bytes.len() as u16).to_be_bytes());
        self.buf.extend_from_slice(&bytes);
        self
    }

    /// Appends a length-prefixed opaque byte string (u16 length).
    pub fn put_bytes(&mut self, b: &[u8]) -> &mut Self {
        debug_assert!(b.len() <= u16::MAX as usize);
        self.buf.extend_from_slice(&(b.len() as u16).to_be_bytes());
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends a length-prefixed opaque byte string with a u32 length —
    /// for state blobs (sealed sessions) that can outgrow the u16 wire
    /// prefix of [`Writer::put_bytes`].
    pub fn put_blob(&mut self, b: &[u8]) -> &mut Self {
        debug_assert!(b.len() <= u32::MAX as usize);
        self.buf.extend_from_slice(&(b.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends a raw byte tag.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a 32-bit big-endian integer.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a 64-bit big-endian integer.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip —
    /// state codecs must never drift through decimal formatting).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Finishes into a shareable buffer.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// A cursor reader over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a 32-bit identity.
    pub fn get_id(&mut self) -> Result<UserId, DecodeError> {
        let b = self.take(4, "truncated id")?;
        Ok(UserId::from_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a length-prefixed big integer.
    pub fn get_ubig(&mut self) -> Result<Ubig, DecodeError> {
        let len = self.take(2, "truncated length")?;
        let len = u16::from_be_bytes([len[0], len[1]]) as usize;
        Ok(Ubig::from_bytes_be(self.take(len, "truncated integer")?))
    }

    /// Reads a length-prefixed opaque byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take(2, "truncated length")?;
        let len = u16::from_be_bytes([len[0], len[1]]) as usize;
        self.take(len, "truncated bytes")
    }

    /// Reads a u32-length-prefixed byte string written by
    /// [`Writer::put_blob`].
    pub fn get_blob(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take(4, "truncated blob length")?;
        let len = u32::from_be_bytes([len[0], len[1], len[2], len[3]]) as usize;
        self.take(len, "truncated blob")
    }

    /// Reads a raw byte tag.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "truncated tag")?[0])
    }

    /// Reads a 32-bit big-endian integer.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "truncated u32")?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a 64-bit big-endian integer.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "truncated u64")?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` bit pattern written by [`Writer::put_f64`].
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Fails unless the whole payload was consumed (catches codec drift).
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError {
                what: "trailing bytes",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_fields() {
        let z = Ubig::from_hex("deadbeefcafef00d").unwrap();
        let mut w = Writer::new();
        w.put_id(UserId(42)).put_ubig(&z).put_bytes(b"sig");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_id().unwrap(), UserId(42));
        assert_eq!(r.get_ubig().unwrap(), z);
        assert_eq!(r.get_bytes().unwrap(), b"sig");
        r.expect_end().unwrap();
    }

    #[test]
    fn zero_encodes_empty() {
        let mut w = Writer::new();
        w.put_ubig(&Ubig::zero());
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.get_ubig().unwrap().is_zero());
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.put_ubig(&Ubig::from_u64(0xffff));
        let buf = w.finish();
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(r.get_ubig().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_id(UserId(1)).put_bytes(b"x");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let _ = r.get_id().unwrap();
        assert!(r.expect_end().is_err());
    }
}
