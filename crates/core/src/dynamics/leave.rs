//! The Leave and Partition protocols (paper §7, two rounds each).
//!
//! Both are the same *reduced re-key*: the departing user(s) are cut out of
//! the ring, the remaining **odd-indexed** users (paper indexing
//! `j ∈ {1, 3, 5, …}`; 1-based) refresh their exponents and GQ commitments,
//! everyone recomputes `X'_i` over the closed ring, and a single batch
//! verification (paper eq. (10)/(12)) plus Lemma 1 guard the new key
//!
//! ```text
//! K' = ∏_{i ∉ L} g^{r_i r_{i+1}}        (eqs. (11)/(13))
//! ```
//!
//! Even-indexed members keep their old exponent **and reuse their old GQ
//! commitment `τ_i` against the fresh challenge `c̄`** — exactly as
//! specified, soundness caveat documented in [`crate::dynamics`].

use std::collections::BTreeSet;

use egka_bigint::{mod_mul, Ubig};
use egka_energy::complexity::{LP_R1_BITS, LP_R2_BITS};
use egka_energy::{CompOp, Meter, Scheme};
use egka_hash::ChaChaRng;
use egka_net::Medium;
use rand::SeedableRng;

use crate::bd;
use crate::group::{GroupSession, MemberState};
use crate::proposed::NodeReport;
use crate::wire::{kind, Reader, Writer};

/// Result of a Leave or Partition run.
#[derive(Clone, Debug)]
pub struct LeaveOutcome {
    /// The post-event session (remaining members, original ring order).
    pub session: GroupSession,
    /// Per-remaining-member reports, new-ring order.
    pub reports: Vec<NodeReport>,
    /// Positions (in the new ring) of the members that refreshed
    /// (the paper's `v` odd-indexed users).
    pub refreshers: Vec<usize>,
}

/// Single-user Leave: `leaver` is the position in `session`'s ring.
///
/// # Panics
/// Panics if `leaver` is out of range, if fewer than 3 members remain, or
/// on any verification failure.
pub fn leave(session: &GroupSession, leaver: usize, seed: u64) -> LeaveOutcome {
    reduced_rekey(session, &BTreeSet::from([leaver]), seed)
}

/// Partition: all `leavers` (ring positions) depart at once.
///
/// # Panics
/// As [`leave`]; also panics if `leavers` is empty or removes everyone.
pub fn partition(session: &GroupSession, leavers: &[usize], seed: u64) -> LeaveOutcome {
    let set: BTreeSet<usize> = leavers.iter().copied().collect();
    assert!(!set.is_empty(), "partition must remove at least one member");
    reduced_rekey(session, &set, seed)
}

fn reduced_rekey(session: &GroupSession, leavers: &BTreeSet<usize>, seed: u64) -> LeaveOutcome {
    let n = session.n();
    assert!(leavers.iter().all(|&l| l < n), "leaver out of range");
    let remaining: Vec<usize> = (0..n).filter(|i| !leavers.contains(i)).collect();
    let n_rem = remaining.len();
    assert!(n_rem >= 3, "at least three members must remain");
    let params = &session.params;

    // Paper's "odd-indexed" is 1-based: U_1, U_3, … ⇒ 0-based even ring
    // positions. Members that have never committed a (τ, t) — e.g. a
    // freshly joined user — must refresh regardless of parity.
    let refreshes: Vec<bool> = remaining
        .iter()
        .map(|&p| p % 2 == 0 || session.members[p].t.is_zero())
        .collect();
    for (k, &p) in remaining.iter().enumerate() {
        assert!(
            refreshes[k] || !session.members[p].t.is_zero(),
            "non-refreshing member U{} has no stored GQ commitment",
            session.members[p].id.0
        );
    }

    let medium = Medium::new();
    let eps: Vec<_> = (0..n_rem).map(|_| medium.join()).collect();
    let ids: Vec<_> = (0..n_rem).map(|k| eps[k].id()).collect();
    let meters: Vec<Meter> = (0..n_rem).map(|_| Meter::new()).collect();
    let mut rngs: Vec<ChaChaRng> = (0..n_rem as u64)
        .map(|i| ChaChaRng::seed_from_u64(seed ^ i.wrapping_mul(0xbf58_476d_1ce4_e5b9)))
        .collect();

    // Working copies of each member's view: shares and commitments of the
    // remaining ring (indexed by new-ring position).
    let mut rs: Vec<Ubig> = remaining
        .iter()
        .map(|&p| session.members[p].r.clone())
        .collect();
    let mut zs: Vec<Ubig> = remaining
        .iter()
        .map(|&p| session.members[p].z.clone())
        .collect();
    let mut taus: Vec<Ubig> = remaining
        .iter()
        .map(|&p| session.members[p].tau.clone())
        .collect();
    let mut ts: Vec<Ubig> = remaining
        .iter()
        .map(|&p| session.members[p].t.clone())
        .collect();

    // ---- Round 1: refreshers broadcast fresh (z', t') ----
    for k in 0..n_rem {
        if !refreshes[k] {
            continue;
        }
        let rng = &mut rngs[k];
        let share = bd::round1_share(rng, &params.bd);
        meters[k].record(CompOp::ModExp); // z'_j
        let (tau, t) = params.gq.commit(rng); // τ'^e: half of the SignGen charged below
        let mut w = Writer::new();
        w.put_id(session.members[remaining[k]].id)
            .put_ubig(&share.z)
            .put_ubig(&t);
        let others: Vec<_> = ids
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != k)
            .map(|(_, &id)| id)
            .collect();
        eps[k].multicast(&others, kind::LP_ROUND1, w.finish(), LP_R1_BITS);
        rs[k] = share.r;
        zs[k] = share.z;
        taus[k] = tau;
        ts[k] = t;
    }
    // Drain round-1: every member hears every *other* refresher.
    let v = refreshes.iter().filter(|&&r| r).count();
    for k in 0..n_rem {
        let expect = if refreshes[k] { v - 1 } else { v };
        for _ in 0..expect {
            let pkt = eps[k].recv_kind(kind::LP_ROUND1);
            let mut r = Reader::new(&pkt.payload);
            let _id = r.get_id().expect("round-1 id");
            let _z = r.get_ubig().expect("round-1 z");
            let _t = r.get_ubig().expect("round-1 t");
            r.expect_end().expect("no trailing bytes");
            // Views already updated in the shared vectors above; a receiving
            // node would store (_id → _z, _t) here. The decode validates the
            // frame; the assert below validates content equality.
            debug_assert!(zs.contains(&_z));
        }
    }

    // ---- Round 2: everyone broadcasts (X'_i, s̄_i); controller last ----
    let z_prod = zs
        .iter()
        .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &params.bd.p));
    let t_agg = params.gq.aggregate_commitments(&ts);
    let bind = z_prod.to_bytes_be();
    let challenge = params.gq.shared_challenge(&t_agg, &bind);

    let mut xs: Vec<Ubig> = Vec::with_capacity(n_rem);
    let mut ss: Vec<Ubig> = Vec::with_capacity(n_rem);
    for k in 0..n_rem {
        let x = bd::round2_x(
            &params.bd,
            &rs[k],
            &zs[(k + n_rem - 1) % n_rem],
            &zs[(k + 1) % n_rem],
        );
        meters[k].record(CompOp::ModExp);
        meters[k].record(CompOp::ModInv);
        let member = &session.members[remaining[k]];
        let s = params.gq.respond(&member.gq_key, &taus[k], &challenge);
        // Fresh commit + respond for refreshers; commitment *reuse* +
        // respond for the rest — the paper charges one signature
        // generation either way (Table 5's even-row joules include it).
        meters[k].record(CompOp::SignGen(Scheme::Gq));
        xs.push(x);
        ss.push(s);
    }
    let send = |k: usize| {
        let mut w = Writer::new();
        w.put_id(session.members[remaining[k]].id)
            .put_ubig(&xs[k])
            .put_ubig(&ss[k]);
        let others: Vec<_> = ids
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != k)
            .map(|(_, &id)| id)
            .collect();
        eps[k].multicast(&others, kind::LP_ROUND2, w.finish(), LP_R2_BITS);
    };
    for k in 1..n_rem {
        send(k);
    }
    // Controller (first remaining member) broadcasts last.
    for _ in 0..n_rem - 1 {
        let _ = eps[0].recv_kind(kind::LP_ROUND2);
    }
    send(0);
    for (k, ep) in eps.iter().enumerate().skip(1) {
        for _ in 0..n_rem - 1 {
            let _ = ep.recv_kind(kind::LP_ROUND2);
        }
        let _ = k;
    }

    // ---- Verification + key (per member) ----
    let id_bytes: Vec<Vec<u8>> = remaining
        .iter()
        .map(|&p| session.members[p].id.to_bytes().to_vec())
        .collect();
    let id_refs: Vec<&[u8]> = id_bytes.iter().map(|v| v.as_slice()).collect();
    let mut keys = Vec::with_capacity(n_rem);
    for k in 0..n_rem {
        let ok = params.gq.aggregate_verify(&id_refs, &ss, &challenge, &bind);
        meters[k].record(CompOp::SignVerify(Scheme::Gq));
        assert!(ok, "batch verification (eq. 10/12) failed");
        assert!(bd::lemma1_holds(&params.bd, &xs), "Lemma 1 failed");
        let ring: Vec<Ubig> = (0..n_rem).map(|j| xs[(k + j) % n_rem].clone()).collect();
        let key = bd::compute_key(&params.bd, &rs[k], &zs[(k + n_rem - 1) % n_rem], &ring);
        meters[k].record(CompOp::ModExp);
        keys.push(key);
    }
    assert!(keys.windows(2).all(|w| w[0] == w[1]), "leave keys diverged");
    let new_key = keys.pop().expect("non-empty group");
    assert_ne!(new_key, session.key, "key must change on departure");

    // ---- Assemble outcome ----
    let members: Vec<MemberState> = remaining
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let m = &session.members[p];
            MemberState {
                id: m.id,
                gq_key: m.gq_key.clone(),
                r: rs[k].clone(),
                z: zs[k].clone(),
                tau: taus[k].clone(),
                t: ts[k].clone(),
            }
        })
        .collect();
    let reports: Vec<NodeReport> = (0..n_rem)
        .map(|k| {
            let mut counts = meters[k].snapshot();
            let stats = medium.stats(eps[k].id());
            counts.tx_bits = stats.tx_bits;
            counts.rx_bits = stats.rx_bits;
            counts.tx_bits_actual = stats.tx_bits_actual;
            counts.rx_bits_actual = stats.rx_bits_actual;
            counts.msgs_tx = stats.msgs_tx;
            counts.msgs_rx = stats.msgs_rx;
            NodeReport {
                id: session.members[remaining[k]].id,
                key: new_key.clone(),
                counts,
            }
        })
        .collect();
    LeaveOutcome {
        session: GroupSession {
            params: params.clone(),
            members,
            key: new_key,
        },
        reports,
        refreshers: refreshes
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(k, _)| k)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::testutil::session;
    use egka_energy::complexity::{proposed_leave, proposed_partition};

    #[test]
    fn leave_agrees_and_preserves_invariant() {
        let (_, s0) = session(6, 10);
        let out = leave(&s0, 3, 50); // U4 (1-based even) departs
        assert_eq!(out.session.n(), 5);
        assert!(out.session.invariant_holds());
        assert_ne!(out.session.key, s0.key);
    }

    #[test]
    fn leave_counts_match_table5_closed_form() {
        // n = 8, leaver at 0-based 3 (1-based 4, even) ⇒ v = 4 refreshers.
        let (_, s0) = session(8, 11);
        let out = leave(&s0, 3, 51);
        let roles = proposed_leave(8, 4);
        let odd_want = &roles[0].counts;
        let even_want = &roles[1].counts;
        assert_eq!(out.refreshers.len(), 4);
        for (k, rep) in out.reports.iter().enumerate() {
            let want = if out.refreshers.contains(&k) {
                odd_want
            } else {
                even_want
            };
            let tag = format!("pos {k} ({})", rep.id);
            assert_eq!(rep.counts.exps(), want.exps(), "{tag} exps");
            assert_eq!(rep.counts.tx_bits, want.tx_bits, "{tag} tx");
            assert_eq!(rep.counts.rx_bits, want.rx_bits, "{tag} rx");
            assert_eq!(rep.counts.msgs_tx, want.msgs_tx, "{tag} msgs tx");
            assert_eq!(rep.counts.msgs_rx, want.msgs_rx, "{tag} msgs rx");
        }
    }

    #[test]
    fn partition_removes_several_and_agrees() {
        let (_, s0) = session(9, 12);
        let out = partition(&s0, &[1, 5, 7], 52);
        assert_eq!(out.session.n(), 6);
        assert!(out.session.invariant_holds());
    }

    #[test]
    fn partition_counts_match_closed_form() {
        // n = 10, leavers at 0-based {1, 3} (1-based 2 and 4, both even) ⇒
        // remaining = 8, refreshers v = 5 (1-based 1,3,5,7,9).
        let (_, s0) = session(10, 13);
        let out = partition(&s0, &[1, 3], 53);
        let roles = proposed_partition(10, 2, 5);
        assert_eq!(out.refreshers.len(), 5);
        for (k, rep) in out.reports.iter().enumerate() {
            let want = if out.refreshers.contains(&k) {
                &roles[0].counts
            } else {
                &roles[1].counts
            };
            assert_eq!(rep.counts.exps(), want.exps(), "pos {k} exps");
            assert_eq!(rep.counts.rx_bits, want.rx_bits, "pos {k} rx");
        }
    }

    #[test]
    fn departed_member_cannot_compute_new_key() {
        // The leaver knows K and all old shares; the new key must differ
        // from anything derivable with its stale r (spot check: it differs
        // from the old key and from K^anything trivial).
        let (_, s0) = session(5, 14);
        let out = leave(&s0, 2, 54);
        assert_ne!(out.session.key, s0.key);
    }

    #[test]
    #[should_panic(expected = "at least three members")]
    fn leave_below_minimum_panics() {
        let (_, s0) = session(3, 15);
        let _ = leave(&s0, 1, 55);
    }
}
