//! The Leave and Partition protocols (paper §7, two rounds each).
//!
//! Both are the same *reduced re-key*: the departing user(s) are cut out of
//! the ring, the remaining **odd-indexed** users (paper indexing
//! `j ∈ {1, 3, 5, …}`; 1-based) refresh their exponents and GQ commitments,
//! everyone recomputes `X'_i` over the closed ring, and a single batch
//! verification (paper eq. (10)/(12)) plus Lemma 1 guard the new key
//!
//! ```text
//! K' = ∏_{i ∉ L} g^{r_i r_{i+1}}        (eqs. (11)/(13))
//! ```
//!
//! Even-indexed members keep their old exponent **and reuse their old GQ
//! commitment `τ_i` against the fresh challenge `c̄`** — exactly as
//! specified, soundness caveat documented in [`crate::dynamics`].
//!
//! Every remaining member is a sans-IO round machine; [`LeaveRun`] is the
//! pumpable execution, [`leave`]/[`partition`] the blocking wrappers.

use std::collections::BTreeSet;
use std::sync::Arc;

use egka_bigint::{mod_mul, Ubig};
use egka_energy::complexity::{LP_R1_BITS, LP_R2_BITS};
use egka_energy::{CompOp, Meter, OpCounts, Scheme};
use egka_hash::ChaChaRng;
use egka_sig::GqSecretKey;
use rand::SeedableRng;

use crate::bd;
use crate::group::{GroupSession, MemberState};
use crate::ident::UserId;
use crate::machine::{Dest, Engine, Execution, Faults, Metered, Outgoing, Phase, PhaseOut, Pump};
use crate::params::Params;
use crate::proposed::NodeReport;
use crate::wire::{kind, Reader, Writer};

/// Result of a Leave or Partition run.
#[derive(Clone, Debug)]
pub struct LeaveOutcome {
    /// The post-event session (remaining members, original ring order).
    pub session: GroupSession,
    /// Per-remaining-member reports, new-ring order.
    pub reports: Vec<NodeReport>,
    /// Positions (in the new ring) of the members that refreshed
    /// (the paper's `v` odd-indexed users).
    pub refreshers: Vec<usize>,
}

/// One remaining member's protocol state: its own secrets plus its view of
/// the surviving ring's public values.
struct NodeState {
    k: usize,
    n_rem: usize,
    id: UserId,
    gq_key: GqSecretKey,
    params: Arc<Params>,
    meter: Meter,
    rng: ChaChaRng,
    refresher: bool,
    ring_ids: Vec<UserId>,
    // Own secret state (refreshed in Round 1 if `refresher`).
    r: Ubig,
    tau: Ubig,
    t: Ubig,
    z: Ubig,
    // Public view of the remaining ring, by new-ring position.
    zs: Vec<Ubig>,
    ts: Vec<Ubig>,
    xs: Vec<Ubig>,
    ss: Vec<Ubig>,
    challenge: Ubig,
    bind: Vec<u8>,
    derived: Option<Ubig>,
}

impl Metered for NodeState {
    fn meter(&self) -> &Meter {
        &self.meter
    }
}

fn node_machine(state: NodeState, peers: Vec<egka_net::NodeId>) -> Engine<NodeState> {
    let n_rem = state.n_rem;
    let k = state.k;
    // One recipient list (everyone but self), shared by all three sending
    // phases.
    let others: Vec<egka_net::NodeId> = peers
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != k)
        .map(|(_, &id)| id)
        .collect();
    let others_r2 = others.clone();
    let others_ctrl = others.clone();
    let mut phases: Vec<Phase<NodeState>> = Vec::new();
    // ---- Round 1: refreshers broadcast fresh (z', t') ----
    phases.push(Phase::immediate(move |s: &mut NodeState, _| {
        if !s.refresher {
            return PhaseOut::Send(Vec::new());
        }
        let share = bd::round1_share(&mut s.rng, &s.params.bd);
        s.meter.record(CompOp::ModExp); // z'_j
        let (tau, t) = s.params.gq.commit(&mut s.rng); // τ'^e: half of the SignGen charged below
        let mut w = Writer::new();
        w.put_id(s.id).put_ubig(&share.z).put_ubig(&t);
        s.r = share.r;
        s.z = share.z.clone();
        s.zs[s.k] = share.z;
        s.tau = tau;
        s.t = t.clone();
        s.ts[s.k] = t;
        PhaseOut::Send(vec![Outgoing {
            to: Dest::Multicast(others.clone()),
            kind: kind::LP_ROUND1,
            payload: w.finish(),
            nominal_bits: LP_R1_BITS,
        }])
    }));
    // ---- Absorb Round 1, derive (X'_k, s̄_k); controller sends last ----
    // The expected count is patched in by the builder (depends on v).
    phases.push(Phase::gather(
        kind::LP_ROUND1,
        0,
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("round-1 id");
                let z = r.get_ubig().expect("round-1 z");
                let t = r.get_ubig().expect("round-1 t");
                r.expect_end().expect("no trailing bytes");
                let j = s
                    .ring_ids
                    .iter()
                    .position(|&u| u == id)
                    .expect("round-1 sender survives in the ring");
                s.zs[j] = z;
                s.ts[j] = t;
            }
            let x = bd::round2_x(
                &s.params.bd,
                &s.r,
                &s.zs[(s.k + n_rem - 1) % n_rem],
                &s.zs[(s.k + 1) % n_rem],
            );
            s.meter.record(CompOp::ModExp);
            s.meter.record(CompOp::ModInv);
            let z_prod =
                s.zs.iter()
                    .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &s.params.bd.p));
            let t_agg = s.params.gq.aggregate_commitments(&s.ts);
            s.bind = z_prod.to_bytes_be();
            s.challenge = s.params.gq.shared_challenge(&t_agg, &s.bind);
            let resp = s.params.gq.respond(&s.gq_key, &s.tau, &s.challenge);
            // Fresh commit + respond for refreshers; commitment *reuse* +
            // respond for the rest — the paper charges one signature
            // generation either way (Table 5's even-row joules include it).
            s.meter.record(CompOp::SignGen(Scheme::Gq));
            s.xs[s.k] = x;
            s.ss[s.k] = resp;
            PhaseOut::Send(if s.k == 0 {
                Vec::new() // controller broadcasts last
            } else {
                vec![round2_msg(s, &others_r2)]
            })
        },
    ));
    // ---- Absorb Round 2 (controller then answers) ----
    phases.push(Phase::gather(
        kind::LP_ROUND2,
        n_rem - 1,
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("round-2 id");
                let x = r.get_ubig().expect("round-2 X");
                let resp = r.get_ubig().expect("round-2 s");
                r.expect_end().expect("no trailing bytes");
                let j = s
                    .ring_ids
                    .iter()
                    .position(|&u| u == id)
                    .expect("round-2 sender survives in the ring");
                s.xs[j] = x;
                s.ss[j] = resp;
            }
            PhaseOut::Send(if s.k == 0 {
                vec![round2_msg(s, &others_ctrl)]
            } else {
                Vec::new()
            })
        },
    ));
    // ---- Verification + key ----
    phases.push(Phase::immediate(move |s: &mut NodeState, _| {
        let id_bytes: Vec<Vec<u8>> = s.ring_ids.iter().map(|u| u.to_bytes().to_vec()).collect();
        let id_refs: Vec<&[u8]> = id_bytes.iter().map(|v| v.as_slice()).collect();
        let ok = s
            .params
            .gq
            .aggregate_verify(&id_refs, &s.ss, &s.challenge, &s.bind);
        s.meter.record(CompOp::SignVerify(Scheme::Gq));
        assert!(ok, "batch verification (eq. 10/12) failed");
        assert!(bd::lemma1_holds(&s.params.bd, &s.xs), "Lemma 1 failed");
        let ring: Vec<Ubig> = (0..n_rem)
            .map(|j| s.xs[(s.k + j) % n_rem].clone())
            .collect();
        let key = bd::compute_key(&s.params.bd, &s.r, &s.zs[(s.k + n_rem - 1) % n_rem], &ring);
        s.meter.record(CompOp::ModExp);
        s.derived = Some(key.clone());
        PhaseOut::Done(key)
    }));
    Engine::new(state, phases)
}

fn round2_msg(s: &NodeState, targets: &[egka_net::NodeId]) -> Outgoing {
    let mut w = Writer::new();
    w.put_id(s.id).put_ubig(&s.xs[s.k]).put_ubig(&s.ss[s.k]);
    Outgoing {
        to: Dest::Multicast(targets.to_vec()),
        kind: kind::LP_ROUND2,
        payload: w.finish(),
        nominal_bits: LP_R2_BITS,
    }
}

/// One in-flight reduced rekey (Leave or Partition).
pub struct LeaveRun {
    exec: Execution<NodeState>,
    base: GroupSession,
    remaining: Vec<usize>,
    refreshes: Vec<bool>,
}

impl LeaveRun {
    /// Prepares a reduced rekey removing `leavers` (ring positions in
    /// `session`).
    ///
    /// # Panics
    /// As [`partition`].
    pub fn new(
        session: &GroupSession,
        leavers: &BTreeSet<usize>,
        seed: u64,
        faults: &Faults,
    ) -> Self {
        let n = session.n();
        assert!(leavers.iter().all(|&l| l < n), "leaver out of range");
        let remaining: Vec<usize> = (0..n).filter(|i| !leavers.contains(i)).collect();
        let n_rem = remaining.len();
        assert!(n_rem >= 3, "at least three members must remain");
        let params = Arc::new(session.params.clone());

        // Paper's "odd-indexed" is 1-based: U_1, U_3, … ⇒ 0-based even ring
        // positions. Members that have never committed a (τ, t) — e.g. a
        // freshly joined user — must refresh regardless of parity.
        let refreshes: Vec<bool> = remaining
            .iter()
            .map(|&p| p % 2 == 0 || session.members[p].t.is_zero())
            .collect();
        for (k, &p) in remaining.iter().enumerate() {
            assert!(
                refreshes[k] || !session.members[p].t.is_zero(),
                "non-refreshing member U{} has no stored GQ commitment",
                session.members[p].id.0
            );
        }
        let v = refreshes.iter().filter(|&&r| r).count();
        let ring_ids: Vec<UserId> = remaining.iter().map(|&p| session.members[p].id).collect();

        let exec = Execution::new(&ring_ids, faults, |k, net_ids| {
            let p = remaining[k];
            let m = &session.members[p];
            let state = NodeState {
                k,
                n_rem,
                id: m.id,
                gq_key: m.gq_key.clone(),
                params: Arc::clone(&params),
                meter: Meter::new(),
                rng: ChaChaRng::seed_from_u64(
                    seed ^ (k as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9),
                ),
                refresher: refreshes[k],
                ring_ids: ring_ids.clone(),
                r: m.r.clone(),
                tau: m.tau.clone(),
                t: m.t.clone(),
                z: m.z.clone(),
                zs: remaining
                    .iter()
                    .map(|&q| session.members[q].z.clone())
                    .collect(),
                ts: remaining
                    .iter()
                    .map(|&q| session.members[q].t.clone())
                    .collect(),
                xs: vec![Ubig::zero(); n_rem],
                ss: vec![Ubig::zero(); n_rem],
                challenge: Ubig::zero(),
                bind: Vec::new(),
                derived: None,
            };
            let mut engine = node_machine(state, net_ids.to_vec());
            // Round-1 fan-in depends on the refresher census: a refresher
            // hears the other v−1, everyone else hears all v.
            let expect = if refreshes[k] { v - 1 } else { v };
            engine.set_gather_count(1, expect);
            engine
        });
        LeaveRun {
            exec,
            base: session.clone(),
            remaining,
            refreshes,
        }
    }

    /// One non-blocking scheduling sweep.
    pub fn pump(&mut self) -> Pump {
        self.exec.pump()
    }

    /// True iff every survivor derived the new key.
    pub fn is_done(&self) -> bool {
        self.exec.is_done()
    }

    /// Ops + traffic spent so far (aborted-attempt accounting).
    pub fn partial_counts(&self) -> OpCounts {
        self.exec.partial_counts()
    }

    /// Virtual milliseconds this run has spent on its radio clock (`None`
    /// off-radio).
    pub fn virtual_elapsed_ms(&self) -> Option<f64> {
        self.exec.virtual_now_ms()
    }

    /// Assembles the outcome.
    ///
    /// # Panics
    /// Panics if the run is unfinished, keys diverged, or the key did not
    /// change.
    pub fn finish(self) -> LeaveOutcome {
        assert!(self.exec.is_done(), "finish() before the run completed");
        let n_rem = self.remaining.len();
        let new_key = self
            .exec
            .machine(0)
            .state()
            .derived
            .clone()
            .expect("derived");
        for k in 0..n_rem {
            assert_eq!(
                self.exec.machine(k).state().derived.as_ref(),
                Some(&new_key),
                "leave keys diverged"
            );
        }
        assert_ne!(new_key, self.base.key, "key must change on departure");

        let members: Vec<MemberState> = (0..n_rem)
            .map(|k| {
                let s = self.exec.machine(k).state();
                let m = &self.base.members[self.remaining[k]];
                MemberState {
                    id: m.id,
                    gq_key: m.gq_key.clone(),
                    r: s.r.clone(),
                    z: s.z.clone(),
                    tau: s.tau.clone(),
                    t: s.t.clone(),
                }
            })
            .collect();
        let reports: Vec<NodeReport> = (0..n_rem)
            .map(|k| NodeReport {
                id: self.base.members[self.remaining[k]].id,
                key: new_key.clone(),
                counts: self.exec.node_counts(k),
            })
            .collect();
        LeaveOutcome {
            session: GroupSession {
                params: self.base.params.clone(),
                members,
                key: new_key,
            },
            reports,
            refreshers: self
                .refreshes
                .iter()
                .enumerate()
                .filter(|&(_, &r)| r)
                .map(|(k, _)| k)
                .collect(),
        }
    }
}

/// Single-user Leave: `leaver` is the position in `session`'s ring.
///
/// # Panics
/// Panics if `leaver` is out of range, if fewer than 3 members remain, or
/// on any verification failure.
pub fn leave(session: &GroupSession, leaver: usize, seed: u64) -> LeaveOutcome {
    reduced_rekey(session, &BTreeSet::from([leaver]), seed)
}

/// Partition: all `leavers` (ring positions) depart at once.
///
/// # Panics
/// As [`leave`]; also panics if `leavers` is empty or removes everyone.
pub fn partition(session: &GroupSession, leavers: &[usize], seed: u64) -> LeaveOutcome {
    let set: BTreeSet<usize> = leavers.iter().copied().collect();
    assert!(!set.is_empty(), "partition must remove at least one member");
    reduced_rekey(session, &set, seed)
}

fn reduced_rekey(session: &GroupSession, leavers: &BTreeSet<usize>, seed: u64) -> LeaveOutcome {
    let mut run = LeaveRun::new(session, leavers, seed, &Faults::none());
    loop {
        match run.pump() {
            Pump::Done => return run.finish(),
            Pump::Progressed => {}
            other => panic!("reduced rekey cannot {other:?} on a reliable medium"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::testutil::session;
    use egka_energy::complexity::{proposed_leave, proposed_partition};

    #[test]
    fn leave_agrees_and_preserves_invariant() {
        let (_, s0) = session(6, 10);
        let out = leave(&s0, 3, 50); // U4 (1-based even) departs
        assert_eq!(out.session.n(), 5);
        assert!(out.session.invariant_holds());
        assert_ne!(out.session.key, s0.key);
    }

    #[test]
    fn leave_counts_match_table5_closed_form() {
        // n = 8, leaver at 0-based 3 (1-based 4, even) ⇒ v = 4 refreshers.
        let (_, s0) = session(8, 11);
        let out = leave(&s0, 3, 51);
        let roles = proposed_leave(8, 4);
        let odd_want = &roles[0].counts;
        let even_want = &roles[1].counts;
        assert_eq!(out.refreshers.len(), 4);
        for (k, rep) in out.reports.iter().enumerate() {
            let want = if out.refreshers.contains(&k) {
                odd_want
            } else {
                even_want
            };
            let tag = format!("pos {k} ({})", rep.id);
            assert_eq!(rep.counts.exps(), want.exps(), "{tag} exps");
            assert_eq!(rep.counts.tx_bits, want.tx_bits, "{tag} tx");
            assert_eq!(rep.counts.rx_bits, want.rx_bits, "{tag} rx");
            assert_eq!(rep.counts.msgs_tx, want.msgs_tx, "{tag} msgs tx");
            assert_eq!(rep.counts.msgs_rx, want.msgs_rx, "{tag} msgs rx");
        }
    }

    #[test]
    fn partition_removes_several_and_agrees() {
        let (_, s0) = session(9, 12);
        let out = partition(&s0, &[1, 5, 7], 52);
        assert_eq!(out.session.n(), 6);
        assert!(out.session.invariant_holds());
    }

    #[test]
    fn partition_counts_match_closed_form() {
        // n = 10, leavers at 0-based {1, 3} (1-based 2 and 4, both even) ⇒
        // remaining = 8, refreshers v = 5 (1-based 1,3,5,7,9).
        let (_, s0) = session(10, 13);
        let out = partition(&s0, &[1, 3], 53);
        let roles = proposed_partition(10, 2, 5);
        assert_eq!(out.refreshers.len(), 5);
        for (k, rep) in out.reports.iter().enumerate() {
            let want = if out.refreshers.contains(&k) {
                &roles[0].counts
            } else {
                &roles[1].counts
            };
            assert_eq!(rep.counts.exps(), want.exps(), "pos {k} exps");
            assert_eq!(rep.counts.rx_bits, want.rx_bits, "pos {k} rx");
        }
    }

    #[test]
    fn departed_member_cannot_compute_new_key() {
        // The leaver knows K and all old shares; the new key must differ
        // from anything derivable with its stale r (spot check: it differs
        // from the old key and from K^anything trivial).
        let (_, s0) = session(5, 14);
        let out = leave(&s0, 2, 54);
        assert_ne!(out.session.key, s0.key);
    }

    #[test]
    #[should_panic(expected = "at least three members")]
    fn leave_below_minimum_panics() {
        let (_, s0) = session(3, 15);
        let _ = leave(&s0, 1, 55);
    }
}
