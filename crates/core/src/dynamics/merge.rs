//! The Merge protocol (paper §7, three rounds, `k = 2` groups).
//!
//! The two controllers `U_1` (group A) and `U_{n+1}` (group B) refresh
//! their exponents, exchange signed round-1 messages carrying their fresh
//! share and their group's *edge* share, derive a pairwise DH key, and then
//! swap the two half-keys
//!
//! ```text
//! K*_A = K_A · (z_2 z_n)^{−r_1} · (z_2 z_{n+m})^{r'_1}          (eq. (7))
//! K*_B = K_B · (z_n z_{n+2})^{r'_{n+1}} · (z_{n+2} z_{n+m})^{−r_{n+1}}  (eq. (8))
//! ```
//!
//! through symmetric envelopes (under each group's old key and under the
//! controllers' DH key), so that every member of the merged ring computes
//! `K' = K*_A · K*_B` (eq. (9)). Only the two controllers exponentiate
//! (4 each); all bystanders just decrypt twice.

use egka_bigint::{mod_inverse, mod_mul, mod_pow, Ubig};
use egka_energy::complexity::{MERGE_R1_BITS, MERGE_R2_BITS, MERGE_R3_BITS};
use egka_energy::{CompOp, Meter, Scheme};
use egka_hash::ChaChaRng;
use egka_net::Medium;
use egka_sig::GqSignature;
use rand::SeedableRng;

use crate::dynamics::{open_key, seal_key};
use crate::group::{GroupSession, MemberState};
use crate::proposed::NodeReport;
use crate::wire::{kind, Reader, Writer};

/// Result of a Merge run.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// The merged session: ring = group A then group B, controllers'
    /// exponents refreshed.
    pub session: GroupSession,
    /// Per-node reports, merged-ring order.
    pub reports: Vec<NodeReport>,
}

/// Merges `a` and `b` (which must share parameters — same PKG).
///
/// # Panics
/// Panics if the parameter sets differ, either group has fewer than 2
/// members, or any signature/envelope check fails.
pub fn merge(a: &GroupSession, b: &GroupSession, seed: u64) -> MergeOutcome {
    assert_eq!(
        a.params.bd.p, b.params.bd.p,
        "groups must share the BD group"
    );
    assert_eq!(a.params.gq.n, b.params.gq.n, "groups must share the PKG");
    let n = a.n();
    let m = b.n();
    assert!(n >= 2 && m >= 2, "merge needs two non-trivial groups");
    let params = &a.params;
    let ka_material = a.key_material();
    let kb_material = b.key_material();

    let medium = Medium::new();
    // Endpoints: 0..n-1 = group A, n..n+m-1 = group B.
    let eps: Vec<_> = (0..n + m).map(|_| medium.join()).collect();
    let meters: Vec<Meter> = (0..n + m).map(|_| Meter::new()).collect();
    let mut rng_a = ChaChaRng::seed_from_u64(seed ^ 0xa);
    let mut rng_b = ChaChaRng::seed_from_u64(seed ^ 0xb);

    let u1 = &a.members[0];
    let un1 = &b.members[0];

    // ---- Round 1: both controllers refresh and announce ----
    // m'_1 = U_1 ‖ z̃_1 ‖ z_n ‖ σ'_1 → U_{n+1};   symmetric for B.
    let round1 = |ctrl: &MemberState,
                  edge_z: &Ubig,
                  rng: &mut ChaChaRng,
                  meter: &Meter|
     -> (Ubig, Ubig, Vec<u8>) {
        let r_new = loop {
            let r = egka_bigint::random_below(rng, &params.bd.q);
            if !r.is_zero() {
                break r;
            }
        };
        let z_new = mod_pow(&params.bd.g, &r_new, &params.bd.p);
        meter.record(CompOp::ModExp);
        let mut body = Writer::new();
        body.put_id(ctrl.id).put_ubig(&z_new).put_ubig(edge_z);
        let sig = params.gq.sign(rng, &ctrl.gq_key, &body.finish());
        meter.record(CompOp::SignGen(Scheme::Gq));
        let mut w = Writer::new();
        w.put_id(ctrl.id)
            .put_ubig(&z_new)
            .put_ubig(edge_z)
            .put_ubig(&sig.s)
            .put_ubig(&sig.c);
        (r_new, z_new, w.finish().to_vec())
    };
    let (r1_new, z1_new, m1) = round1(u1, a.z_of(n - 1), &mut rng_a, &meters[0]);
    let (rn1_new, zn1_new, mn1) = round1(un1, b.z_of(m - 1), &mut rng_b, &meters[n]);
    eps[0].multicast(&[eps[n].id()], kind::MERGE_R1, m1.into(), MERGE_R1_BITS);
    eps[n].multicast(&[eps[0].id()], kind::MERGE_R1, mn1.into(), MERGE_R1_BITS);

    // ---- Round 2: verify peer, derive DH, compute half-keys ----
    let read_r1 = |who: usize, meter: &Meter| -> (Ubig, Ubig) {
        let pkt = eps[who].recv_kind(kind::MERGE_R1);
        let mut r = Reader::new(&pkt.payload);
        let id = r.get_id().expect("r1 id");
        let z_new = r.get_ubig().expect("r1 z~");
        let edge = r.get_ubig().expect("r1 edge z");
        let s = r.get_ubig().expect("r1 sig s");
        let c = r.get_ubig().expect("r1 sig c");
        r.expect_end().expect("no trailing bytes");
        let mut body = Writer::new();
        body.put_id(id).put_ubig(&z_new).put_ubig(&edge);
        let ok = params
            .gq
            .verify(&id.to_bytes(), &body.finish(), &GqSignature { s, c });
        meter.record(CompOp::SignVerify(Scheme::Gq));
        assert!(ok, "merge round-1 signature rejected");
        (z_new, edge)
    };

    // U_1's view.
    let (zn1_seen, edge_b) = read_r1(0, &meters[0]); // z̃_{n+1}, z_{n+m}
    let k_dh_a = mod_pow(&zn1_seen, &r1_new, &params.bd.p);
    meters[0].record(CompOp::ModExp);
    // K*_A = K_A · (z_2 z_n)^{−r_1} · (z_2 z_{n+m})^{r'_1}
    let k_star_a = {
        let z2 = a.z_of(1);
        let zn = a.z_of(n - 1);
        let t1_base = mod_inverse(&mod_mul(z2, zn, &params.bd.p), &params.bd.p).expect("unit");
        meters[0].record(CompOp::ModInv);
        let t1 = mod_pow(&t1_base, &u1.r, &params.bd.p);
        meters[0].record(CompOp::ModExp);
        let t2 = mod_pow(&mod_mul(z2, &edge_b, &params.bd.p), &r1_new, &params.bd.p);
        meters[0].record(CompOp::ModExp);
        mod_mul(&mod_mul(&a.key, &t1, &params.bd.p), &t2, &params.bd.p)
    };

    // U_{n+1}'s view.
    let (z1_seen, edge_a) = read_r1(n, &meters[n]); // z̃_1, z_n
    let k_dh_b = mod_pow(&z1_seen, &rn1_new, &params.bd.p);
    meters[n].record(CompOp::ModExp);
    assert_eq!(k_dh_a, k_dh_b, "controllers' DH keys must match");
    // K*_B = K_B · (z_n z_{n+2})^{r'_{n+1}} · (z_{n+2} z_{n+m})^{−r_{n+1}}
    let k_star_b = {
        let zn2 = b.z_of(1); // z_{n+2}: group B's second member
        let znm = b.z_of(m - 1); // z_{n+m}
        let t1 = mod_pow(&mod_mul(&edge_a, zn2, &params.bd.p), &rn1_new, &params.bd.p);
        meters[n].record(CompOp::ModExp);
        let t2_base = mod_inverse(&mod_mul(zn2, znm, &params.bd.p), &params.bd.p).expect("unit");
        meters[n].record(CompOp::ModInv);
        let t2 = mod_pow(&t2_base, &un1.r, &params.bd.p);
        meters[n].record(CompOp::ModExp);
        mod_mul(&mod_mul(&b.key, &t1, &params.bd.p), &t2, &params.bd.p)
    };

    // Round-2 broadcasts: each controller seals its half-key under its
    // group key and under the DH key.
    let dh_material = k_dh_a.to_bytes_be();
    let send_r2 = |who: usize,
                   ctrl_id: crate::ident::UserId,
                   half: &Ubig,
                   group_material: &[u8],
                   targets: &[egka_net::NodeId],
                   rng: &mut ChaChaRng,
                   meter: &Meter| {
        let env_group = seal_key(rng, group_material, half, ctrl_id, None);
        meter.record(CompOp::SymEnc);
        let env_dh = seal_key(rng, &dh_material, half, ctrl_id, None);
        meter.record(CompOp::SymEnc);
        let mut w = Writer::new();
        w.put_id(ctrl_id).put_bytes(&env_group).put_bytes(&env_dh);
        eps[who].multicast(targets, kind::MERGE_R2, w.finish(), MERGE_R2_BITS);
    };
    // A's bystanders + the peer controller.
    let a_targets: Vec<_> = (1..n).map(|i| eps[i].id()).chain([eps[n].id()]).collect();
    send_r2(
        0,
        u1.id,
        &k_star_a,
        &ka_material,
        &a_targets,
        &mut rng_a,
        &meters[0],
    );
    let b_targets: Vec<_> = (n + 1..n + m)
        .map(|i| eps[i].id())
        .chain([eps[0].id()])
        .collect();
    send_r2(
        n,
        un1.id,
        &k_star_b,
        &kb_material,
        &b_targets,
        &mut rng_b,
        &meters[n],
    );

    // ---- Round 3: controllers re-export the peer half-key to their group ----
    let relay = |who: usize,
                 ctrl_id: crate::ident::UserId,
                 peer_id: crate::ident::UserId,
                 group_material: &[u8],
                 targets: &[egka_net::NodeId],
                 rng: &mut ChaChaRng,
                 meter: &Meter|
     -> Ubig {
        let pkt = eps[who].recv_kind(kind::MERGE_R2);
        let mut r = Reader::new(&pkt.payload);
        let id = r.get_id().expect("r2 id");
        assert_eq!(id, peer_id);
        let _env_group = r.get_bytes().expect("r2 group envelope");
        let env_dh = r.get_bytes().expect("r2 dh envelope").to_vec();
        r.expect_end().expect("no trailing bytes");
        let (peer_half, _) = open_key(&dh_material, &env_dh, peer_id).expect("valid DH envelope");
        meter.record(CompOp::SymDec);
        let env = seal_key(rng, group_material, &peer_half, ctrl_id, None);
        meter.record(CompOp::SymEnc);
        let mut w = Writer::new();
        w.put_id(ctrl_id).put_bytes(&env);
        eps[who].multicast(targets, kind::MERGE_R3, w.finish(), MERGE_R3_BITS);
        peer_half
    };
    let a_bystanders: Vec<_> = (1..n).map(|i| eps[i].id()).collect();
    let b_bystanders: Vec<_> = (n + 1..n + m).map(|i| eps[i].id()).collect();
    let k_star_b_at_u1 = relay(
        0,
        u1.id,
        un1.id,
        &ka_material,
        &a_bystanders,
        &mut rng_a,
        &meters[0],
    );
    let k_star_a_at_un1 = relay(
        n,
        un1.id,
        u1.id,
        &kb_material,
        &b_bystanders,
        &mut rng_b,
        &meters[n],
    );
    assert_eq!(k_star_b_at_u1, k_star_b);
    assert_eq!(k_star_a_at_un1, k_star_a);

    // ---- Key computation ----
    let new_key = mod_mul(&k_star_a, &k_star_b, &params.bd.p);
    // Bystanders: open their controller's R2 (own half) and R3 (peer half).
    let open_bystander =
        |who: usize, ctrl_id: crate::ident::UserId, group_material: &[u8], meter: &Meter| -> Ubig {
            let pkt = eps[who].recv_kind(kind::MERGE_R2);
            let mut r = Reader::new(&pkt.payload);
            let id = r.get_id().expect("r2 id");
            assert_eq!(id, ctrl_id);
            let env_group = r.get_bytes().expect("r2 group envelope");
            let (own_half, _) =
                open_key(group_material, env_group, ctrl_id).expect("valid envelope");
            meter.record(CompOp::SymDec);
            let _env_dh = r.get_bytes().expect("r2 dh envelope");
            r.expect_end().expect("no trailing bytes");
            let pkt3 = eps[who].recv_kind(kind::MERGE_R3);
            let mut r3 = Reader::new(&pkt3.payload);
            let id3 = r3.get_id().expect("r3 id");
            assert_eq!(id3, ctrl_id);
            let env3 = r3.get_bytes().expect("r3 envelope");
            let (peer_half, _) = open_key(group_material, env3, ctrl_id).expect("valid envelope");
            meter.record(CompOp::SymDec);
            mod_mul(&own_half, &peer_half, &params.bd.p)
        };
    #[allow(clippy::needless_range_loop)] // i indexes eps and meters in lockstep
    for i in 1..n {
        let k = open_bystander(i, u1.id, &ka_material, &meters[i]);
        assert_eq!(k, new_key, "group-A bystander key diverged");
    }
    #[allow(clippy::needless_range_loop)]
    for i in n + 1..n + m {
        let k = open_bystander(i, un1.id, &kb_material, &meters[i]);
        assert_eq!(k, new_key, "group-B bystander key diverged");
    }

    // ---- Assemble outcome ----
    let mut members = Vec::with_capacity(n + m);
    for (pos, src) in a.members.iter().enumerate() {
        let mut mstate = src.clone();
        if pos == 0 {
            mstate.r = r1_new.clone();
            mstate.z = z1_new.clone();
        }
        members.push(mstate);
    }
    for (pos, src) in b.members.iter().enumerate() {
        let mut mstate = src.clone();
        if pos == 0 {
            mstate.r = rn1_new.clone();
            mstate.z = zn1_new.clone();
        }
        members.push(mstate);
    }
    let reports: Vec<NodeReport> = (0..n + m)
        .map(|i| {
            let mut counts = meters[i].snapshot();
            let stats = medium.stats(eps[i].id());
            counts.tx_bits = stats.tx_bits;
            counts.rx_bits = stats.rx_bits;
            counts.tx_bits_actual = stats.tx_bits_actual;
            counts.rx_bits_actual = stats.rx_bits_actual;
            counts.msgs_tx = stats.msgs_tx;
            counts.msgs_rx = stats.msgs_rx;
            NodeReport {
                id: members[i].id,
                key: new_key.clone(),
                counts,
            }
        })
        .collect();
    MergeOutcome {
        session: GroupSession {
            params: params.clone(),
            members,
            key: new_key,
        },
        reports,
    }
}

/// Merges `k ≥ 2` groups by controller-chained pairwise merges — the
/// generalization Table 4's `6(k−1)` message count implies (the paper's
/// text only spells out `k = 2`). Each fold is a full three-round Merge;
/// per-node counts accumulate across folds (keyed by identity).
///
/// # Panics
/// As [`merge`]; also panics if fewer than two sessions are given.
pub fn merge_many(sessions: &[&GroupSession], seed: u64) -> MergeOutcome {
    assert!(sessions.len() >= 2, "merge_many needs at least two groups");
    let mut acc = merge(sessions[0], sessions[1], seed);
    for (k, next) in sessions.iter().enumerate().skip(2) {
        let step = merge(&acc.session, next, seed ^ (k as u64) << 8);
        // Accumulate counts per identity across folds.
        let mut reports = step.reports;
        for prev in &acc.reports {
            if let Some(r) = reports.iter_mut().find(|r| r.id == prev.id) {
                r.counts.merge(&prev.counts);
            }
        }
        acc = MergeOutcome {
            session: step.session,
            reports,
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::testutil::session;
    use crate::params::{Pkg, SecurityProfile};
    use crate::proposed::{self, RunConfig};
    use egka_energy::complexity::proposed_merge;

    /// Two groups extracted from the same PKG.
    fn two_groups(n: u32, m: u32, seed: u64) -> (GroupSession, GroupSession) {
        let mut rng = ChaChaRng::seed_from_u64(0x6d65_7267 ^ seed);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys_a = pkg.extract_group(n);
        let keys_b: Vec<_> = (n..n + m)
            .map(|i| pkg.extract(crate::ident::UserId(i)))
            .collect();
        let (_, sa) = proposed::run(pkg.params(), &keys_a, seed, RunConfig::default());
        let (_, sb) = proposed::run(pkg.params(), &keys_b, seed ^ 1, RunConfig::default());
        (sa, sb)
    }

    #[test]
    fn merge_agrees_and_preserves_invariant() {
        let (sa, sb) = two_groups(4, 3, 20);
        let out = merge(&sa, &sb, 21);
        assert_eq!(out.session.n(), 7);
        assert!(out.session.invariant_holds());
        assert_ne!(out.session.key, sa.key);
        assert_ne!(out.session.key, sb.key);
    }

    #[test]
    fn merge_counts_match_table5_closed_form() {
        let (sa, sb) = two_groups(5, 4, 22);
        let out = merge(&sa, &sb, 23);
        let roles = proposed_merge(5, 4);
        let ctrl_want = &roles[0].counts;
        let by_want = &roles[2].counts;
        for (i, rep) in out.reports.iter().enumerate() {
            let want = if i == 0 || i == 5 { ctrl_want } else { by_want };
            let tag = format!("pos {i}");
            assert_eq!(rep.counts.exps(), want.exps(), "{tag} exps");
            assert_eq!(
                rep.counts.get(CompOp::SignGen(Scheme::Gq)),
                want.get(CompOp::SignGen(Scheme::Gq)),
                "{tag} gen"
            );
            assert_eq!(rep.counts.tx_bits, want.tx_bits, "{tag} tx");
            assert_eq!(rep.counts.rx_bits, want.rx_bits, "{tag} rx");
        }
    }

    #[test]
    fn merged_group_can_run_leave() {
        // Composition: merge then leave — exercises the session bookkeeping
        // across dynamic events.
        let (sa, sb) = two_groups(4, 4, 24);
        let merged = merge(&sa, &sb, 25);
        let out = crate::dynamics::leave(&merged.session, 5, 26);
        assert_eq!(out.session.n(), 7);
        assert!(out.session.invariant_holds());
    }

    #[test]
    fn merge_many_realizes_6_k_minus_1_messages() {
        // k = 3 groups: total messages must be 6(k−1) = 12.
        let mut rng = ChaChaRng::seed_from_u64(0x6d6d);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let mut sessions = Vec::new();
        let mut base = 0u32;
        for (g, size) in [(0u64, 3u32), (1, 4), (2, 3)] {
            let keys: Vec<_> = (base..base + size)
                .map(|i| pkg.extract(crate::ident::UserId(i)))
                .collect();
            let (_, s) = proposed::run(pkg.params(), &keys, 30 + g, RunConfig::default());
            sessions.push(s);
            base += size;
        }
        let refs: Vec<&GroupSession> = sessions.iter().collect();
        let out = merge_many(&refs, 31);
        assert_eq!(out.session.n(), 10);
        assert!(out.session.invariant_holds());
        let total_msgs: u64 = out.reports.iter().map(|r| r.counts.msgs_tx).sum();
        assert_eq!(total_msgs, 12, "6(k−1) for k = 3");
        // All keys fresh and agreed.
        for s in &sessions {
            assert_ne!(out.session.key, s.key);
        }
    }

    #[test]
    #[should_panic(expected = "share the BD group")]
    fn merging_foreign_groups_panics() {
        let (sa, _) = two_groups(3, 2, 27);
        let (_, sb) = session(3, 28); // different PKG entirely
        let _ = merge(&sa, &sb, 29);
    }
}
