//! The Merge protocol (paper §7, three rounds, `k = 2` groups).
//!
//! The two controllers `U_1` (group A) and `U_{n+1}` (group B) refresh
//! their exponents, exchange signed round-1 messages carrying their fresh
//! share and their group's *edge* share, derive a pairwise DH key, and then
//! swap the two half-keys
//!
//! ```text
//! K*_A = K_A · (z_2 z_n)^{−r_1} · (z_2 z_{n+m})^{r'_1}          (eq. (7))
//! K*_B = K_B · (z_n z_{n+2})^{r'_{n+1}} · (z_{n+2} z_{n+m})^{−r_{n+1}}  (eq. (8))
//! ```
//!
//! through symmetric envelopes (under each group's old key and under the
//! controllers' DH key), so that every member of the merged ring computes
//! `K' = K*_A · K*_B` (eq. (9)). Only the two controllers exponentiate
//! (4 each); all bystanders just decrypt twice.
//!
//! Controllers and bystanders are sans-IO round machines; [`MergeRun`] is
//! the pumpable execution, [`merge`]/[`merge_many`] the blocking wrappers.

use std::sync::Arc;

use egka_bigint::{mod_inverse, mod_mul, mod_pow, Ubig};
use egka_energy::complexity::{MERGE_R1_BITS, MERGE_R2_BITS, MERGE_R3_BITS};
use egka_energy::{CompOp, Meter, OpCounts, Scheme};
use egka_hash::ChaChaRng;
use egka_sig::GqSignature;
use rand::SeedableRng;

use crate::dynamics::{open_key, seal_key};
use crate::group::{GroupSession, MemberState};
use crate::ident::UserId;
use crate::machine::{Dest, Engine, Execution, Faults, Metered, Outgoing, Phase, PhaseOut, Pump};
use crate::params::Params;
use crate::proposed::NodeReport;
use crate::wire::{kind, Reader, Writer};

/// Result of a Merge run.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// The merged session: ring = group A then group B, controllers'
    /// exponents refreshed.
    pub session: GroupSession,
    /// Per-node reports, merged-ring order.
    pub reports: Vec<NodeReport>,
}

struct NodeState {
    params: Arc<Params>,
    meter: Meter,
    rng: ChaChaRng,
    /// Own group's old-key symmetric material.
    km: Vec<u8>,
    derived: Option<Ubig>,
    // Controller scratch/outputs.
    r_new: Option<Ubig>,
    z_new: Option<Ubig>,
    k_dh: Option<Ubig>,
    k_star: Option<Ubig>,
    // Bystander scratch.
    own_half: Option<Ubig>,
}

impl Metered for NodeState {
    fn meter(&self) -> &Meter {
        &self.meter
    }
}

/// Which side of eq. (7)/(8) a controller computes.
struct CtrlSpec {
    member: MemberState,
    /// Own group's current key (`K_A` / `K_B`).
    group_key: Ubig,
    /// The peer controller's identity.
    peer_id: UserId,
    /// `z_2` for A; `z_{n+2}` for B (own group's second member).
    z_second: Ubig,
    /// `z_n` for A; `z_{n+m}` for B (own group's edge share).
    z_edge: Ubig,
    /// True for group A's `U_1` (decides the eq. (7) vs (8) shape).
    is_a: bool,
}

fn controller_phases(
    spec: CtrlSpec,
    peer_ctrl: egka_net::NodeId,
    r2_targets: Vec<egka_net::NodeId>,
    r3_targets: Vec<egka_net::NodeId>,
) -> Vec<Phase<NodeState>> {
    let CtrlSpec {
        member,
        group_key,
        peer_id,
        z_second,
        z_edge,
        is_a,
    } = spec;
    let member2 = member.clone();
    let own_id = member.id;
    let edge_for_announce = z_edge.clone();
    vec![
        // ---- Round 1: refresh and announce to the peer controller ----
        // m'_1 = U_1 ‖ z̃_1 ‖ z_n ‖ σ'_1  (symmetric for B).
        Phase::immediate(move |s: &mut NodeState, _| {
            let r_new = loop {
                let r = egka_bigint::random_below(&mut s.rng, &s.params.bd.q);
                if !r.is_zero() {
                    break r;
                }
            };
            let z_new = mod_pow(&s.params.bd.g, &r_new, &s.params.bd.p);
            s.meter.record(CompOp::ModExp);
            let mut body = Writer::new();
            body.put_id(member.id)
                .put_ubig(&z_new)
                .put_ubig(&edge_for_announce);
            let sig = s.params.gq.sign(&mut s.rng, &member.gq_key, &body.finish());
            s.meter.record(CompOp::SignGen(Scheme::Gq));
            let mut w = Writer::new();
            w.put_id(member.id)
                .put_ubig(&z_new)
                .put_ubig(&edge_for_announce)
                .put_ubig(&sig.s)
                .put_ubig(&sig.c);
            s.r_new = Some(r_new);
            s.z_new = Some(z_new);
            PhaseOut::Send(vec![Outgoing {
                to: Dest::Multicast(vec![peer_ctrl]),
                kind: kind::MERGE_R1,
                payload: w.finish(),
                nominal_bits: MERGE_R1_BITS,
            }])
        }),
        // ---- Round 2: verify peer, derive DH, compute the half-key ----
        Phase::gather(kind::MERGE_R1, 1, move |s: &mut NodeState, pkts| {
            let mut r = Reader::new(&pkts[0].payload);
            let id = r.get_id().expect("r1 id");
            let z_peer = r.get_ubig().expect("r1 z~");
            let edge_peer = r.get_ubig().expect("r1 edge z");
            let sig_s = r.get_ubig().expect("r1 sig s");
            let sig_c = r.get_ubig().expect("r1 sig c");
            r.expect_end().expect("no trailing bytes");
            let mut body = Writer::new();
            body.put_id(id).put_ubig(&z_peer).put_ubig(&edge_peer);
            let ok = s.params.gq.verify(
                &id.to_bytes(),
                &body.finish(),
                &GqSignature { s: sig_s, c: sig_c },
            );
            s.meter.record(CompOp::SignVerify(Scheme::Gq));
            assert!(ok, "merge round-1 signature rejected");
            let r_new = s.r_new.as_ref().expect("refreshed");
            let k_dh = mod_pow(&z_peer, r_new, &s.params.bd.p);
            s.meter.record(CompOp::ModExp);
            let p = &s.params.bd.p;
            let half = if is_a {
                // K*_A = K_A · (z_2 z_n)^{−r_1} · (z_2 z_{n+m})^{r'_1}
                let t1_base = mod_inverse(&mod_mul(&z_second, &z_edge, p), p).expect("unit");
                s.meter.record(CompOp::ModInv);
                let t1 = mod_pow(&t1_base, &member2.r, p);
                s.meter.record(CompOp::ModExp);
                let t2 = mod_pow(&mod_mul(&z_second, &edge_peer, p), r_new, p);
                s.meter.record(CompOp::ModExp);
                mod_mul(&mod_mul(&group_key, &t1, p), &t2, p)
            } else {
                // K*_B = K_B · (z_n z_{n+2})^{r'_{n+1}} · (z_{n+2} z_{n+m})^{−r_{n+1}}
                let t1 = mod_pow(&mod_mul(&edge_peer, &z_second, p), r_new, p);
                s.meter.record(CompOp::ModExp);
                let t2_base = mod_inverse(&mod_mul(&z_second, &z_edge, p), p).expect("unit");
                s.meter.record(CompOp::ModInv);
                let t2 = mod_pow(&t2_base, &member2.r, p);
                s.meter.record(CompOp::ModExp);
                mod_mul(&mod_mul(&group_key, &t1, p), &t2, p)
            };
            // Seal the half-key under the group key and under the DH key.
            let env_group = seal_key(&mut s.rng, &s.km, &half, member2.id, None);
            s.meter.record(CompOp::SymEnc);
            let env_dh = seal_key(&mut s.rng, &k_dh.to_bytes_be(), &half, member2.id, None);
            s.meter.record(CompOp::SymEnc);
            let mut w = Writer::new();
            w.put_id(member2.id)
                .put_bytes(&env_group)
                .put_bytes(&env_dh);
            s.k_dh = Some(k_dh);
            s.k_star = Some(half);
            // Own bystanders + the peer controller.
            PhaseOut::Send(vec![Outgoing {
                to: Dest::Multicast(r2_targets.clone()),
                kind: kind::MERGE_R2,
                payload: w.finish(),
                nominal_bits: MERGE_R2_BITS,
            }])
        }),
        // ---- Round 3: re-export the peer half-key to the own group ----
        Phase::gather(kind::MERGE_R2, 1, move |s: &mut NodeState, pkts| {
            let mut r = Reader::new(&pkts[0].payload);
            let id = r.get_id().expect("r2 id");
            assert_eq!(id, peer_id);
            let _env_group = r.get_bytes().expect("r2 group envelope");
            let env_dh = r.get_bytes().expect("r2 dh envelope").to_vec();
            r.expect_end().expect("no trailing bytes");
            let dh_material = s.k_dh.as_ref().expect("derived").to_bytes_be();
            let (peer_half, _) =
                open_key(&dh_material, &env_dh, peer_id).expect("valid DH envelope");
            s.meter.record(CompOp::SymDec);
            let env = seal_key(&mut s.rng, &s.km, &peer_half, own_id, None);
            s.meter.record(CompOp::SymEnc);
            let mut w = Writer::new();
            w.put_id(own_id).put_bytes(&env);
            s.own_half = Some(peer_half);
            PhaseOut::Send(vec![Outgoing {
                to: Dest::Multicast(r3_targets.clone()),
                kind: kind::MERGE_R3,
                payload: w.finish(),
                nominal_bits: MERGE_R3_BITS,
            }])
        }),
        Phase::immediate(|s: &mut NodeState, _| {
            let key = mod_mul(
                s.k_star.as_ref().expect("own half"),
                s.own_half.as_ref().expect("peer half"),
                &s.params.bd.p,
            );
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        }),
    ]
}

fn bystander_phases(ctrl_id: UserId) -> Vec<Phase<NodeState>> {
    vec![
        // Own controller's R2: open own half (the DH envelope is not for
        // bystanders).
        Phase::gather(kind::MERGE_R2, 1, move |s: &mut NodeState, pkts| {
            let mut r = Reader::new(&pkts[0].payload);
            let id = r.get_id().expect("r2 id");
            assert_eq!(id, ctrl_id);
            let env_group = r.get_bytes().expect("r2 group envelope");
            let (own_half, _) = open_key(&s.km, env_group, ctrl_id).expect("valid envelope");
            s.meter.record(CompOp::SymDec);
            let _env_dh = r.get_bytes().expect("r2 dh envelope");
            r.expect_end().expect("no trailing bytes");
            s.own_half = Some(own_half);
            PhaseOut::Send(Vec::new())
        }),
        Phase::gather(kind::MERGE_R3, 1, move |s: &mut NodeState, pkts| {
            let mut r3 = Reader::new(&pkts[0].payload);
            let id3 = r3.get_id().expect("r3 id");
            assert_eq!(id3, ctrl_id);
            let env3 = r3.get_bytes().expect("r3 envelope");
            let (peer_half, _) = open_key(&s.km, env3, ctrl_id).expect("valid envelope");
            s.meter.record(CompOp::SymDec);
            let key = mod_mul(
                s.own_half.as_ref().expect("own half"),
                &peer_half,
                &s.params.bd.p,
            );
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        }),
    ]
}

/// One in-flight Merge of two groups.
pub struct MergeRun {
    exec: Execution<NodeState>,
    a: GroupSession,
    b: GroupSession,
}

impl MergeRun {
    /// Prepares a merge of `a` and `b` (same PKG).
    ///
    /// # Panics
    /// As [`merge`].
    pub fn new(a: &GroupSession, b: &GroupSession, seed: u64, faults: &Faults) -> Self {
        assert_eq!(
            a.params.bd.p, b.params.bd.p,
            "groups must share the BD group"
        );
        assert_eq!(a.params.gq.n, b.params.gq.n, "groups must share the PKG");
        let n = a.n();
        let m = b.n();
        assert!(n >= 2 && m >= 2, "merge needs two non-trivial groups");
        let params = Arc::new(a.params.clone());
        let ka_material = a.key_material();
        let kb_material = b.key_material();
        let u1 = a.members[0].clone();
        let un1 = b.members[0].clone();

        // Node order: group A (0..n), then group B (n..n+m).
        let mut ids = a.member_ids();
        ids.extend(b.member_ids());

        let exec = Execution::new(&ids, faults, |i, net_ids| {
            let in_a = i < n;
            let state = NodeState {
                params: Arc::clone(&params),
                meter: Meter::new(),
                rng: if i == 0 {
                    ChaChaRng::seed_from_u64(seed ^ 0xa)
                } else if i == n {
                    ChaChaRng::seed_from_u64(seed ^ 0xb)
                } else {
                    // Bystanders never draw randomness.
                    ChaChaRng::seed_from_u64(seed ^ 0xdead ^ i as u64)
                },
                km: if in_a {
                    ka_material.clone()
                } else {
                    kb_material.clone()
                },
                derived: None,
                r_new: None,
                z_new: None,
                k_dh: None,
                k_star: None,
                own_half: None,
            };
            let phases = if i == 0 {
                controller_phases(
                    CtrlSpec {
                        member: u1.clone(),
                        group_key: a.key.clone(),
                        peer_id: un1.id,
                        z_second: a.z_of(1).clone(),
                        z_edge: a.z_of(n - 1).clone(),
                        is_a: true,
                    },
                    net_ids[n],
                    // A's bystanders + the peer controller.
                    (1..n).map(|j| net_ids[j]).chain([net_ids[n]]).collect(),
                    (1..n).map(|j| net_ids[j]).collect(),
                )
            } else if i == n {
                controller_phases(
                    CtrlSpec {
                        member: un1.clone(),
                        group_key: b.key.clone(),
                        peer_id: u1.id,
                        z_second: b.z_of(1).clone(),
                        z_edge: b.z_of(m - 1).clone(),
                        is_a: false,
                    },
                    net_ids[0],
                    (n + 1..n + m)
                        .map(|j| net_ids[j])
                        .chain([net_ids[0]])
                        .collect(),
                    (n + 1..n + m).map(|j| net_ids[j]).collect(),
                )
            } else if in_a {
                bystander_phases(u1.id)
            } else {
                bystander_phases(un1.id)
            };
            Engine::new(state, phases)
        });
        MergeRun {
            exec,
            a: a.clone(),
            b: b.clone(),
        }
    }

    /// One non-blocking scheduling sweep.
    pub fn pump(&mut self) -> Pump {
        self.exec.pump()
    }

    /// True iff every member of both rings derived the merged key.
    pub fn is_done(&self) -> bool {
        self.exec.is_done()
    }

    /// Ops + traffic spent so far (aborted-attempt accounting).
    pub fn partial_counts(&self) -> OpCounts {
        self.exec.partial_counts()
    }

    /// Virtual milliseconds this run has spent on its radio clock (`None`
    /// off-radio).
    pub fn virtual_elapsed_ms(&self) -> Option<f64> {
        self.exec.virtual_now_ms()
    }

    /// Assembles the outcome.
    ///
    /// # Panics
    /// Panics if the run is unfinished or keys diverged.
    pub fn finish(self) -> MergeOutcome {
        assert!(self.exec.is_done(), "finish() before the run completed");
        let n = self.a.n();
        let m = self.b.n();
        let ctrl_a = self.exec.machine(0).state();
        let ctrl_b = self.exec.machine(n).state();
        assert_eq!(ctrl_a.k_dh, ctrl_b.k_dh, "controllers' DH keys must match");
        let new_key = ctrl_a.derived.clone().expect("controller derived");
        for i in 0..n + m {
            assert_eq!(
                self.exec.machine(i).state().derived.as_ref(),
                Some(&new_key),
                "merged key diverged at position {i}"
            );
        }
        let mut members = Vec::with_capacity(n + m);
        for (pos, src) in self.a.members.iter().enumerate() {
            let mut mstate = src.clone();
            if pos == 0 {
                mstate.r = ctrl_a.r_new.clone().expect("refreshed");
                mstate.z = ctrl_a.z_new.clone().expect("refreshed");
            }
            members.push(mstate);
        }
        for (pos, src) in self.b.members.iter().enumerate() {
            let mut mstate = src.clone();
            if pos == 0 {
                mstate.r = ctrl_b.r_new.clone().expect("refreshed");
                mstate.z = ctrl_b.z_new.clone().expect("refreshed");
            }
            members.push(mstate);
        }
        let reports: Vec<NodeReport> = (0..n + m)
            .map(|i| NodeReport {
                id: members[i].id,
                key: new_key.clone(),
                counts: self.exec.node_counts(i),
            })
            .collect();
        MergeOutcome {
            session: GroupSession {
                params: self.a.params.clone(),
                members,
                key: new_key,
            },
            reports,
        }
    }
}

/// Merges `a` and `b` (which must share parameters — same PKG).
///
/// # Panics
/// Panics if the parameter sets differ, either group has fewer than 2
/// members, or any signature/envelope check fails.
pub fn merge(a: &GroupSession, b: &GroupSession, seed: u64) -> MergeOutcome {
    let mut run = MergeRun::new(a, b, seed, &Faults::none());
    loop {
        match run.pump() {
            Pump::Done => return run.finish(),
            Pump::Progressed => {}
            other => panic!("merge cannot {other:?} on a reliable medium"),
        }
    }
}

/// Merges `k ≥ 2` groups by controller-chained pairwise merges — the
/// generalization Table 4's `6(k−1)` message count implies (the paper's
/// text only spells out `k = 2`). Each fold is a full three-round Merge;
/// per-node counts accumulate across folds (keyed by identity).
///
/// # Panics
/// As [`merge`]; also panics if fewer than two sessions are given.
pub fn merge_many(sessions: &[&GroupSession], seed: u64) -> MergeOutcome {
    assert!(sessions.len() >= 2, "merge_many needs at least two groups");
    let mut acc = merge(sessions[0], sessions[1], seed);
    for (k, next) in sessions.iter().enumerate().skip(2) {
        let step = merge(&acc.session, next, seed ^ (k as u64) << 8);
        // Accumulate counts per identity across folds.
        let mut reports = step.reports;
        for prev in &acc.reports {
            if let Some(r) = reports.iter_mut().find(|r| r.id == prev.id) {
                r.counts.merge(&prev.counts);
            }
        }
        acc = MergeOutcome {
            session: step.session,
            reports,
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::testutil::session;
    use crate::params::{Pkg, SecurityProfile};
    use crate::proposed::{self, RunConfig};
    use egka_energy::complexity::proposed_merge;

    /// Two groups extracted from the same PKG.
    fn two_groups(n: u32, m: u32, seed: u64) -> (GroupSession, GroupSession) {
        let mut rng = ChaChaRng::seed_from_u64(0x6d65_7267 ^ seed);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys_a = pkg.extract_group(n);
        let keys_b: Vec<_> = (n..n + m)
            .map(|i| pkg.extract(crate::ident::UserId(i)))
            .collect();
        let (_, sa) = proposed::run(pkg.params(), &keys_a, seed, RunConfig::default());
        let (_, sb) = proposed::run(pkg.params(), &keys_b, seed ^ 1, RunConfig::default());
        (sa, sb)
    }

    #[test]
    fn merge_agrees_and_preserves_invariant() {
        let (sa, sb) = two_groups(4, 3, 20);
        let out = merge(&sa, &sb, 21);
        assert_eq!(out.session.n(), 7);
        assert!(out.session.invariant_holds());
        assert_ne!(out.session.key, sa.key);
        assert_ne!(out.session.key, sb.key);
    }

    #[test]
    fn merge_counts_match_table5_closed_form() {
        let (sa, sb) = two_groups(5, 4, 22);
        let out = merge(&sa, &sb, 23);
        let roles = proposed_merge(5, 4);
        let ctrl_want = &roles[0].counts;
        let by_want = &roles[2].counts;
        for (i, rep) in out.reports.iter().enumerate() {
            let want = if i == 0 || i == 5 { ctrl_want } else { by_want };
            let tag = format!("pos {i}");
            assert_eq!(rep.counts.exps(), want.exps(), "{tag} exps");
            assert_eq!(
                rep.counts.get(CompOp::SignGen(Scheme::Gq)),
                want.get(CompOp::SignGen(Scheme::Gq)),
                "{tag} gen"
            );
            assert_eq!(rep.counts.tx_bits, want.tx_bits, "{tag} tx");
            assert_eq!(rep.counts.rx_bits, want.rx_bits, "{tag} rx");
        }
    }

    #[test]
    fn merged_group_can_run_leave() {
        // Composition: merge then leave — exercises the session bookkeeping
        // across dynamic events.
        let (sa, sb) = two_groups(4, 4, 24);
        let merged = merge(&sa, &sb, 25);
        let out = crate::dynamics::leave(&merged.session, 5, 26);
        assert_eq!(out.session.n(), 7);
        assert!(out.session.invariant_holds());
    }

    #[test]
    fn merge_many_realizes_6_k_minus_1_messages() {
        // k = 3 groups: total messages must be 6(k−1) = 12.
        let mut rng = ChaChaRng::seed_from_u64(0x6d6d);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let mut sessions = Vec::new();
        let mut base = 0u32;
        for (g, size) in [(0u64, 3u32), (1, 4), (2, 3)] {
            let keys: Vec<_> = (base..base + size)
                .map(|i| pkg.extract(crate::ident::UserId(i)))
                .collect();
            let (_, s) = proposed::run(pkg.params(), &keys, 30 + g, RunConfig::default());
            sessions.push(s);
            base += size;
        }
        let refs: Vec<&GroupSession> = sessions.iter().collect();
        let out = merge_many(&refs, 31);
        assert_eq!(out.session.n(), 10);
        assert!(out.session.invariant_holds());
        let total_msgs: u64 = out.reports.iter().map(|r| r.counts.msgs_tx).sum();
        assert_eq!(total_msgs, 12, "6(k−1) for k = 3");
        // All keys fresh and agreed.
        for s in &sessions {
            assert_ne!(out.session.key, s.key);
        }
    }

    #[test]
    #[should_panic(expected = "share the BD group")]
    fn merging_foreign_groups_panics() {
        let (sa, _) = two_groups(3, 2, 27);
        let (_, sb) = session(3, 28); // different PKG entirely
        let _ = merge(&sa, &sb, 29);
    }
}
