//! The paper's four dynamic membership protocols (§7).
//!
//! All four avoid re-running the full GKA: Join and Merge re-key through
//! **symmetric envelopes** under keys the affected parties already share
//! (the current group key `K`, or a fresh pairwise DH key), while Leave and
//! Partition run a *reduced* BD round in which only the odd-indexed
//! survivors refresh their exponents.
//!
//! ## Accounting model
//!
//! Messages are multicast to their **intended recipients** (paper
//! convention; see `egka_energy::complexity`), sealed payloads are priced
//! at plaintext size, and each role's metered operations reproduce the
//! per-role closed forms behind Table 5. The envelopes themselves are real
//! (`egka-symmetric`: AES-128-CBC + HMAC with keys derived from `K`), so
//! the "actual bits" column shows the true cost of honest framing.
//!
//! ## Identified specification gaps (documented, not silently patched)
//!
//! * After a paper-exact Join, `U_1`'s refreshed share `z'_1 = g^{r'_1}` is
//!   never divulged, so a *subsequent* Leave could not compute `X'_2` or
//!   `X'_{n+1}`. [`join::join`]'s `composable` flag implements the obvious
//!   fix (carry `z'_1` inside `m'_1`'s envelope, +1 exponentiation at `U_1`
//!   and +1024 nominal bits) as an ablation.
//! * The Leave/Partition protocols let even-indexed members **reuse** their
//!   GQ commitment `τ_i` under a fresh challenge, which is unsound for GQ
//!   as a proof of knowledge (two responses for one commitment leak
//!   `S_ID^{c−c'}`). Implemented exactly as specified; see DESIGN.md
//!   §security-notes.

pub mod join;
pub mod leave;
pub mod merge;

pub use join::{join, JoinOutcome, JoinRun};
pub use leave::{leave, partition, LeaveOutcome, LeaveRun};
pub use merge::{merge, merge_many, MergeOutcome, MergeRun};

use egka_bigint::Ubig;
use egka_symmetric::Envelope;
use rand::Rng;

use crate::ident::UserId;
use crate::wire::{Reader, Writer};

/// Seals `key_value ‖ sender_id` (and optionally an extra share) under
/// symmetric key material, as the paper's `E_K(K* ‖ U)`.
pub(crate) fn seal_key<R: Rng + ?Sized>(
    rng: &mut R,
    key_material: &[u8],
    key_value: &Ubig,
    sender: UserId,
    extra_share: Option<&Ubig>,
) -> Vec<u8> {
    let env = Envelope::from_key_material(key_material);
    let mut w = Writer::new();
    w.put_ubig(key_value).put_id(sender);
    match extra_share {
        Some(z) => w.put_ubig(z),
        None => w.put_bytes(&[]),
    };
    env.seal(rng, &w.finish())
}

/// Opens a [`seal_key`] envelope and checks the embedded identity — the
/// paper's "checks if the identity was decrypted correctly to ensure the
/// validity of K*". Returns `(key_value, extra_share)`.
pub(crate) fn open_key(
    key_material: &[u8],
    sealed: &[u8],
    expect_sender: UserId,
) -> Option<(Ubig, Option<Ubig>)> {
    let env = Envelope::from_key_material(key_material);
    let plain = env.open(sealed).ok()?;
    let mut r = Reader::new(&plain);
    let key_value = r.get_ubig().ok()?;
    let sender = r.get_id().ok()?;
    if sender != expect_sender {
        return None;
    }
    // The extra field is either a share (non-empty) or an empty marker.
    let rest = r.get_ubig().ok()?;
    r.expect_end().ok()?;
    let extra = if rest.is_zero() { None } else { Some(rest) };
    Some((key_value, extra))
}

#[cfg(test)]
pub(crate) mod testutil {
    use egka_hash::ChaChaRng;
    use egka_sig::GqSecretKey;
    use rand::SeedableRng;

    use crate::group::GroupSession;
    use crate::params::{Pkg, SecurityProfile};
    use crate::proposed::{self, RunConfig};

    /// A toy PKG + an agreed group of `n`, for dynamics tests.
    pub fn session(n: u32, seed: u64) -> (Pkg, GroupSession) {
        let mut rng = ChaChaRng::seed_from_u64(0xd1a_0000 ^ seed);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys = pkg.extract_group(n);
        let (_, session) = proposed::run(pkg.params(), &keys, seed, RunConfig::default());
        (pkg, session)
    }

    /// Extracts a key for a brand-new member.
    pub fn new_member(pkg: &Pkg, id: u32) -> GqSecretKey {
        pkg.extract(crate::ident::UserId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    #[test]
    fn seal_open_roundtrip_with_identity_check() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let k = Ubig::from_hex("aabbccdd00112233").unwrap();
        let sealed = seal_key(&mut rng, b"group key", &k, UserId(3), None);
        let (got, extra) = open_key(b"group key", &sealed, UserId(3)).unwrap();
        assert_eq!(got, k);
        assert!(extra.is_none());
        // Wrong expected sender fails the identity check.
        assert!(open_key(b"group key", &sealed, UserId(4)).is_none());
        // Wrong key material fails the MAC.
        assert!(open_key(b"other key", &sealed, UserId(3)).is_none());
    }

    #[test]
    fn seal_open_carries_extra_share() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        let k = Ubig::from_u64(42);
        let z = Ubig::from_hex("deadbeef").unwrap();
        let sealed = seal_key(&mut rng, b"km", &k, UserId(0), Some(&z));
        let (_, extra) = open_key(b"km", &sealed, UserId(0)).unwrap();
        assert_eq!(extra, Some(z));
    }
}
