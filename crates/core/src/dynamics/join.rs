//! The Join protocol (paper §7, three rounds).
//!
//! ```text
//! Round 1: U_{n+1} → {U_1, U_n}:  m_{n+1} = U_{n+1} ‖ z_{n+1} ‖ σ_{n+1}
//! Round 2: U_1 → G∖{U_1}:         m'_1  = U_1 ‖ E_K(K* ‖ U_1)
//!          U_n → G'∖{U_n}:        m''_n = U_n ‖ E_K(K_DH ‖ U_n) ‖ z_n ‖ σ''_n
//! Round 3: U_n → U_{n+1}:         m'''_n = U_n ‖ E_{K_DH}(K* ‖ U_n)
//! Key:     K' = K* · K_DH = g^{r'_1 r_2 + … + r_n r_{n+1} + r_{n+1} r'_1}
//! ```
//!
//! where `K* = K · (z_2 z_n)^{−r_1} · (z_2 z_{n+1})^{r'_1}` (eq. (5)) and
//! `K_DH = g^{r_n r_{n+1}}`. Only `U_1` and `U_{n+1}` pay exponentiations
//! (2 each; the sponsor `U_n` pays 1 — Table 5 prices it even though
//! Table 4's footnote forgets it); bystanders only decrypt.

use egka_bigint::{mod_inverse, mod_mul, mod_pow, Ubig};
use egka_energy::complexity::{JOIN_M1_BITS, JOIN_MNN_BITS, JOIN_MN_BITS, JOIN_M_NEW_BITS};
use egka_energy::{CompOp, Meter, Scheme};
use egka_hash::ChaChaRng;
use egka_net::Medium;
use egka_sig::{GqSecretKey, GqSignature};
use rand::SeedableRng;

use crate::dynamics::{open_key, seal_key};
use crate::group::{GroupSession, MemberState};
use crate::ident::UserId;
use crate::proposed::NodeReport;
use crate::wire::{kind, Reader, Writer};

/// Result of a Join run.
#[derive(Clone, Debug)]
pub struct JoinOutcome {
    /// The post-join session (`n + 1` members; `U_1`'s exponent refreshed).
    pub session: GroupSession,
    /// Per-node reports in new-ring order `[U_1, …, U_n, U_{n+1}]`.
    pub reports: Vec<NodeReport>,
}

/// Runs the Join protocol: `newcomer` (with `newcomer_key`) joins
/// `session` between `U_n` and `U_1`.
///
/// With `composable = true`, `U_1` additionally computes and disseminates
/// its refreshed share `z'_1` inside `m'_1`'s envelope (one extra
/// exponentiation, +1024 nominal bits), closing the specification gap that
/// otherwise leaves the ring unusable for a *subsequent* Leave (see
/// [`crate::dynamics`] module docs).
///
/// # Panics
/// Panics if the session has fewer than 3 members, on any signature or
/// envelope failure, or if the final keys disagree.
pub fn join(
    session: &GroupSession,
    newcomer: UserId,
    newcomer_key: &GqSecretKey,
    seed: u64,
    composable: bool,
) -> JoinOutcome {
    let n = session.n();
    assert!(n >= 3, "Join distinguishes U_1, U_n and a bystander");
    let params = &session.params;
    let key_material = session.key_material();

    let medium = Medium::new();
    // Endpoints 0..n-1: existing ring; endpoint n: the newcomer.
    let eps: Vec<_> = (0..=n).map(|_| medium.join()).collect();
    let meters: Vec<Meter> = (0..=n).map(|_| Meter::new()).collect();
    let mut rngs: Vec<ChaChaRng> = (0..=n as u64)
        .map(|i| ChaChaRng::seed_from_u64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect();

    // ---- Round 1: the newcomer announces itself to U_1 and U_n ----
    let (new_r, new_z);
    {
        let rng = &mut rngs[n];
        let share = crate::bd::round1_share(rng, &params.bd);
        meters[n].record(CompOp::ModExp); // z_{n+1}
        let mut body = Writer::new();
        body.put_id(newcomer).put_ubig(&share.z);
        let sig = params.gq.sign(rng, newcomer_key, &body.finish());
        meters[n].record(CompOp::SignGen(Scheme::Gq));
        let mut w = Writer::new();
        w.put_id(newcomer)
            .put_ubig(&share.z)
            .put_ubig(&sig.s)
            .put_ubig(&sig.c);
        eps[n].multicast(
            &[eps[0].id(), eps[n - 1].id()],
            kind::JOIN_ANNOUNCE,
            w.finish(),
            JOIN_M_NEW_BITS,
        );
        new_r = share.r;
        new_z = share.z;
    }

    // Shared verification of σ_{n+1} (performed independently by U_1, U_n).
    let verify_announce = |who: usize| -> (UserId, Ubig) {
        let pkt = eps[who].recv_kind(kind::JOIN_ANNOUNCE);
        let mut r = Reader::new(&pkt.payload);
        let id = r.get_id().expect("announce id");
        let z = r.get_ubig().expect("announce z");
        let s = r.get_ubig().expect("announce sig s");
        let c = r.get_ubig().expect("announce sig c");
        r.expect_end().expect("no trailing bytes");
        let mut body = Writer::new();
        body.put_id(id).put_ubig(&z);
        let ok = params
            .gq
            .verify(&id.to_bytes(), &body.finish(), &GqSignature { s, c });
        meters[who].record(CompOp::SignVerify(Scheme::Gq));
        assert!(ok, "newcomer announcement signature rejected");
        (id, z)
    };

    // ---- Round 2 (1): U_1 refreshes r_1 and re-keys the old group ----
    let u1 = &session.members[0];
    let (_, z_new_seen_by_u1) = verify_announce(0);
    let (new_r1, k_star, z1_new);
    {
        let rng = &mut rngs[0];
        let r1p = loop {
            let r = egka_bigint::random_below(rng, &params.bd.q);
            if !r.is_zero() {
                break r;
            }
        };
        // K* = K · (z_2 · z_n)^{−r_1} · (z_2 · z_{n+1})^{r'_1}   (eq. (5))
        let z2 = session.z_of(1);
        let zn = session.z_of(n - 1);
        let a = mod_mul(z2, zn, &params.bd.p);
        let a_inv = mod_inverse(&a, &params.bd.p).expect("unit");
        meters[0].record(CompOp::ModInv);
        let term1 = mod_pow(&a_inv, &u1.r, &params.bd.p);
        meters[0].record(CompOp::ModExp);
        let b = mod_mul(z2, &z_new_seen_by_u1, &params.bd.p);
        let term2 = mod_pow(&b, &r1p, &params.bd.p);
        meters[0].record(CompOp::ModExp);
        let ks = mod_mul(
            &mod_mul(&session.key, &term1, &params.bd.p),
            &term2,
            &params.bd.p,
        );
        // Composable mode: also derive and ship z'_1 (one extra exp).
        let z1p = if composable {
            let z = mod_pow(&params.bd.g, &r1p, &params.bd.p);
            meters[0].record(CompOp::ModExp);
            Some(z)
        } else {
            None
        };
        let sealed = seal_key(rng, &key_material, &ks, u1.id, z1p.as_ref());
        meters[0].record(CompOp::SymEnc);
        let mut w = Writer::new();
        w.put_id(u1.id).put_bytes(&sealed);
        let old_group_minus_u1: Vec<_> = (1..n).map(|i| eps[i].id()).collect();
        let bits = JOIN_M1_BITS
            + if composable {
                egka_energy::wire::Z_BITS
            } else {
                0
            };
        eps[0].multicast(&old_group_minus_u1, kind::JOIN_CONTROLLER, w.finish(), bits);
        new_r1 = r1p;
        k_star = ks;
        z1_new = z1p.unwrap_or_else(|| {
            // Paper-exact mode: z'_1 exists mathematically but is never
            // divulged; the omniscient session bookkeeping below recomputes
            // it un-metered (a real peer could not).
            mod_pow(&params.bd.g, &new_r1, &params.bd.p)
        });
    }

    // ---- Round 2 (2): U_n builds the DH bridge to the newcomer ----
    let un = &session.members[n - 1];
    let (_, z_new_seen_by_un) = verify_announce(n - 1);
    let k_dh_at_un;
    {
        let rng = &mut rngs[n - 1];
        let k_dh = mod_pow(&z_new_seen_by_un, &un.r, &params.bd.p);
        meters[n - 1].record(CompOp::ModExp);
        let sealed = seal_key(rng, &key_material, &k_dh, un.id, None);
        meters[n - 1].record(CompOp::SymEnc);
        let mut body = Writer::new();
        body.put_bytes(&sealed).put_ubig(&un.z);
        let sig = params.gq.sign(rng, &un.gq_key, &body.finish());
        meters[n - 1].record(CompOp::SignGen(Scheme::Gq));
        let mut w = Writer::new();
        w.put_id(un.id)
            .put_bytes(&sealed)
            .put_ubig(&un.z)
            .put_ubig(&sig.s)
            .put_ubig(&sig.c);
        // Everyone but U_n itself needs this: the old group decrypts K_DH,
        // the newcomer verifies σ''_n and reads z_n.
        let everyone_else: Vec<_> = (0..=n)
            .filter(|&i| i != n - 1)
            .map(|i| eps[i].id())
            .collect();
        eps[n - 1].multicast(&everyone_else, kind::JOIN_SPONSOR, w.finish(), JOIN_MN_BITS);
        k_dh_at_un = k_dh;
    }

    // ---- Round 3 ----
    // Each old-group member processes m'_1 and m''_n; U_n additionally
    // hands K* to the newcomer under K_DH.
    let read_sponsor = |who: usize| -> (Vec<u8>, Ubig, GqSignature) {
        let pkt = eps[who].recv_kind(kind::JOIN_SPONSOR);
        let mut r = Reader::new(&pkt.payload);
        let id = r.get_id().expect("sponsor id");
        assert_eq!(id, un.id);
        let sealed = r.get_bytes().expect("sponsor envelope").to_vec();
        let zn = r.get_ubig().expect("sponsor z_n");
        let s = r.get_ubig().expect("sponsor sig s");
        let c = r.get_ubig().expect("sponsor sig c");
        r.expect_end().expect("no trailing bytes");
        (sealed, zn, GqSignature { s, c })
    };

    // U_n: decrypt K* from m'_1, re-encrypt under K_DH, unicast.
    {
        let pkt = eps[n - 1].recv_kind(kind::JOIN_CONTROLLER);
        let mut r = Reader::new(&pkt.payload);
        let id = r.get_id().expect("controller id");
        assert_eq!(id, u1.id);
        let sealed = r.get_bytes().expect("controller envelope");
        let (ks, _z1) = open_key(&key_material, sealed, u1.id).expect("valid K* envelope");
        meters[n - 1].record(CompOp::SymDec);
        assert_eq!(ks, k_star);
        let rng = &mut rngs[n - 1];
        let dh_material = k_dh_at_un.to_bytes_be();
        let sealed2 = seal_key(rng, &dh_material, &ks, un.id, None);
        meters[n - 1].record(CompOp::SymEnc);
        let mut w = Writer::new();
        w.put_id(un.id).put_bytes(&sealed2);
        eps[n - 1].unicast(eps[n].id(), kind::JOIN_HANDOFF, w.finish(), JOIN_MNN_BITS);
    }

    // The newcomer: verify σ''_n, derive K_DH, open the handoff.
    let new_key_at_newcomer;
    {
        let (sealed_kdh, zn_seen, sig) = read_sponsor(n);
        let _ = sealed_kdh; // the newcomer cannot open E_K(·); it uses the handoff
        let mut body = Writer::new();
        body.put_bytes(&{
            // reconstruct exactly what U_n signed: sealed ‖ z_n
            let mut b = Writer::new();
            b.put_bytes(&sealed_kdh).put_ubig(&zn_seen);
            b.finish().to_vec()
        });
        // Verify over the same bytes U_n signed.
        let mut signed = Writer::new();
        signed.put_bytes(&sealed_kdh).put_ubig(&zn_seen);
        let ok = params.gq.verify(&un.id.to_bytes(), &signed.finish(), &sig);
        meters[n].record(CompOp::SignVerify(Scheme::Gq));
        assert!(ok, "sponsor signature rejected");
        let k_dh = mod_pow(&zn_seen, &new_r, &params.bd.p);
        meters[n].record(CompOp::ModExp);
        let pkt = eps[n].recv_kind(kind::JOIN_HANDOFF);
        let mut r = Reader::new(&pkt.payload);
        let id = r.get_id().expect("handoff id");
        assert_eq!(id, un.id);
        let sealed = r.get_bytes().expect("handoff envelope");
        let (ks, _) = open_key(&k_dh.to_bytes_be(), sealed, un.id).expect("valid handoff");
        meters[n].record(CompOp::SymDec);
        new_key_at_newcomer = mod_mul(&ks, &k_dh, &params.bd.p);
    }

    // Bystanders U_2 … U_{n-1}: two decryptions, then the new key.
    let mut bystander_keys = Vec::with_capacity(n.saturating_sub(2));
    for i in 1..n - 1 {
        let pkt = eps[i].recv_kind(kind::JOIN_CONTROLLER);
        let mut r = Reader::new(&pkt.payload);
        let _ = r.get_id().expect("controller id");
        let sealed = r.get_bytes().expect("controller envelope");
        let (ks, _z1) = open_key(&key_material, sealed, u1.id).expect("valid K* envelope");
        meters[i].record(CompOp::SymDec);
        let (sealed_kdh, _zn, _sig) = read_sponsor(i);
        let (kdh, _) = open_key(&key_material, &sealed_kdh, un.id).expect("valid K_DH envelope");
        meters[i].record(CompOp::SymDec);
        bystander_keys.push(mod_mul(&ks, &kdh, &params.bd.p));
    }

    // U_1: read m''_n, decrypt K_DH, compute the new key.
    let new_key_at_u1 = {
        let (sealed_kdh, _zn, _sig) = read_sponsor(0);
        let (kdh, _) = open_key(&key_material, &sealed_kdh, un.id).expect("valid K_DH envelope");
        meters[0].record(CompOp::SymDec);
        mod_mul(&k_star, &kdh, &params.bd.p)
    };
    // U_n already holds both K* and K_DH.
    let new_key_at_un = mod_mul(&k_star, &k_dh_at_un, &params.bd.p);

    // ---- Assemble outcome ----
    let mut members = session.members.clone();
    members[0].r = new_r1;
    members[0].z = z1_new;
    members.push(MemberState {
        id: newcomer,
        gq_key: newcomer_key.clone(),
        r: new_r,
        z: new_z,
        // The newcomer has not yet committed a (τ, t); a fresh pair is
        // produced on its first Leave/Partition round. Zero marks "none".
        tau: Ubig::zero(),
        t: Ubig::zero(),
    });
    let new_key = new_key_at_u1;
    assert_eq!(new_key, new_key_at_un, "U_n key diverged");
    assert_eq!(new_key, new_key_at_newcomer, "newcomer key diverged");
    for (i, k) in bystander_keys.iter().enumerate() {
        assert_eq!(&new_key, k, "bystander U_{} key diverged", i + 2);
    }

    let reports: Vec<NodeReport> = (0..=n)
        .map(|i| {
            let mut counts = meters[i].snapshot();
            let stats = medium.stats(eps[i].id());
            counts.tx_bits = stats.tx_bits;
            counts.rx_bits = stats.rx_bits;
            counts.tx_bits_actual = stats.tx_bits_actual;
            counts.rx_bits_actual = stats.rx_bits_actual;
            counts.msgs_tx = stats.msgs_tx;
            counts.msgs_rx = stats.msgs_rx;
            NodeReport {
                id: if i == n {
                    newcomer
                } else {
                    session.members[i].id
                },
                key: new_key.clone(),
                counts,
            }
        })
        .collect();

    let session_out = GroupSession {
        params: params.clone(),
        members,
        key: new_key,
    };
    JoinOutcome {
        session: session_out,
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::testutil::{new_member, session};
    use egka_energy::complexity::proposed_join;

    #[test]
    fn join_agrees_and_preserves_invariant() {
        let (pkg, s0) = session(4, 1);
        let nk = new_member(&pkg, 4);
        let out = join(&s0, UserId(4), &nk, 99, true);
        assert_eq!(out.session.n(), 5);
        assert!(out.session.invariant_holds(), "ring invariant after join");
        assert_ne!(out.session.key, s0.key, "key must change");
    }

    #[test]
    fn paper_mode_counts_match_table5_closed_form() {
        let (pkg, s0) = session(6, 2);
        let nk = new_member(&pkg, 6);
        let out = join(&s0, UserId(6), &nk, 100, false);
        let roles = proposed_join(6);
        // Role order in closed form: U1, Un, Un+1, Others.
        let u1 = &out.reports[0].counts;
        let un = &out.reports[5].counts;
        let nc = &out.reports[6].counts;
        let by = &out.reports[2].counts;
        for (got, want, name) in [
            (u1, &roles[0].counts, "U1"),
            (un, &roles[1].counts, "Un"),
            (nc, &roles[2].counts, "Un+1"),
            (by, &roles[3].counts, "Others"),
        ] {
            assert_eq!(got.exps(), want.exps(), "{name} exps");
            assert_eq!(
                got.get(CompOp::SignGen(Scheme::Gq)),
                want.get(CompOp::SignGen(Scheme::Gq)),
                "{name} sign gen"
            );
            assert_eq!(
                got.get(CompOp::SignVerify(Scheme::Gq)),
                want.get(CompOp::SignVerify(Scheme::Gq)),
                "{name} sign ver"
            );
            assert_eq!(got.tx_bits, want.tx_bits, "{name} tx bits");
            assert_eq!(got.rx_bits, want.rx_bits, "{name} rx bits");
            assert_eq!(got.msgs_tx, want.msgs_tx, "{name} msgs tx");
            assert_eq!(got.msgs_rx, want.msgs_rx, "{name} msgs rx");
        }
    }

    #[test]
    fn composable_mode_costs_one_more_exp_at_u1() {
        let (pkg, s0) = session(4, 3);
        let nk = new_member(&pkg, 4);
        let paper = join(&s0, UserId(4), &nk, 7, false);
        let comp = join(&s0, UserId(4), &nk, 7, true);
        assert_eq!(
            comp.reports[0].counts.exps(),
            paper.reports[0].counts.exps() + 1
        );
        assert_eq!(
            comp.reports[0].counts.tx_bits,
            paper.reports[0].counts.tx_bits + egka_energy::wire::Z_BITS
        );
    }

    #[test]
    fn paper_mode_session_still_bookkeeps_ring() {
        // Even without disseminating z'_1 the omniscient session state must
        // stay consistent (it models "what the math is", not "who knows it").
        let (pkg, s0) = session(4, 4);
        let nk = new_member(&pkg, 4);
        let out = join(&s0, UserId(4), &nk, 8, false);
        assert!(out.session.invariant_holds());
    }

    #[test]
    fn forged_announcement_is_rejected() {
        let (pkg, s0) = session(4, 5);
        // Key extracted for a DIFFERENT identity: the announcement
        // signature cannot verify as U9.
        let wrong_key = new_member(&pkg, 8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join(&s0, UserId(9), &wrong_key, 9, true)
        }));
        assert!(
            result.is_err(),
            "announcement under mismatched key must fail"
        );
    }
}
