//! The Join protocol (paper §7, three rounds).
//!
//! ```text
//! Round 1: U_{n+1} → {U_1, U_n}:  m_{n+1} = U_{n+1} ‖ z_{n+1} ‖ σ_{n+1}
//! Round 2: U_1 → G∖{U_1}:         m'_1  = U_1 ‖ E_K(K* ‖ U_1)
//!          U_n → G'∖{U_n}:        m''_n = U_n ‖ E_K(K_DH ‖ U_n) ‖ z_n ‖ σ''_n
//! Round 3: U_n → U_{n+1}:         m'''_n = U_n ‖ E_{K_DH}(K* ‖ U_n)
//! Key:     K' = K* · K_DH = g^{r'_1 r_2 + … + r_n r_{n+1} + r_{n+1} r'_1}
//! ```
//!
//! where `K* = K · (z_2 z_n)^{−r_1} · (z_2 z_{n+1})^{r'_1}` (eq. (5)) and
//! `K_DH = g^{r_n r_{n+1}}`. Only `U_1` and `U_{n+1}` pay exponentiations
//! (2 each; the sponsor `U_n` pays 1 — Table 5 prices it even though
//! Table 4's footnote forgets it); bystanders only decrypt.
//!
//! Each of the four roles (controller, sponsor, newcomer, bystander) is a
//! sans-IO [`crate::machine::RoundMachine`] script; [`JoinRun`] is the
//! pumpable execution a scheduler interleaves, [`join`] the blocking
//! wrapper.

use std::sync::Arc;

use egka_bigint::{mod_inverse, mod_mul, mod_pow, Ubig};
use egka_energy::complexity::{JOIN_M1_BITS, JOIN_MNN_BITS, JOIN_MN_BITS, JOIN_M_NEW_BITS};
use egka_energy::{CompOp, Meter, OpCounts, Scheme};
use egka_hash::ChaChaRng;
use egka_sig::{GqSecretKey, GqSignature};
use rand::SeedableRng;

use crate::dynamics::{open_key, seal_key};
use crate::group::{GroupSession, MemberState};
use crate::ident::UserId;
use crate::machine::{Dest, Engine, Execution, Faults, Metered, Outgoing, Phase, PhaseOut, Pump};
use crate::proposed::NodeReport;
use crate::wire::{kind, Reader, Writer};

/// Result of a Join run.
#[derive(Clone, Debug)]
pub struct JoinOutcome {
    /// The post-join session (`n + 1` members; `U_1`'s exponent refreshed).
    pub session: GroupSession,
    /// Per-node reports in new-ring order `[U_1, …, U_n, U_{n+1}]`.
    pub reports: Vec<NodeReport>,
}

struct NodeState {
    params: Arc<Params>,
    meter: Meter,
    rng: ChaChaRng,
    /// The old group key's symmetric material (old members; unused by the
    /// newcomer, who has not seen `K`).
    key_material: Vec<u8>,
    u1_id: UserId,
    un_id: UserId,
    // Role outputs consumed by the wrapper's session assembly.
    new_r1: Option<Ubig>,
    z1_new: Option<Ubig>,
    new_r: Option<Ubig>,
    new_z: Option<Ubig>,
    derived: Option<Ubig>,
    // Cross-phase scratch.
    k_star: Option<Ubig>,
    k_dh: Option<Ubig>,
}

use crate::params::Params;

impl Metered for NodeState {
    fn meter(&self) -> &Meter {
        &self.meter
    }
}

/// Parses and signature-checks the newcomer's announcement (done
/// independently by `U_1` and `U_n`). Returns the announced share.
fn verify_announce(s: &mut NodeState, payload: &[u8]) -> Ubig {
    let mut r = Reader::new(payload);
    let id = r.get_id().expect("announce id");
    let z = r.get_ubig().expect("announce z");
    let sig_s = r.get_ubig().expect("announce sig s");
    let sig_c = r.get_ubig().expect("announce sig c");
    r.expect_end().expect("no trailing bytes");
    let mut body = Writer::new();
    body.put_id(id).put_ubig(&z);
    let ok = s.params.gq.verify(
        &id.to_bytes(),
        &body.finish(),
        &GqSignature { s: sig_s, c: sig_c },
    );
    s.meter.record(CompOp::SignVerify(Scheme::Gq));
    assert!(ok, "newcomer announcement signature rejected");
    z
}

/// Parses the sponsor's `m''_n = U_n ‖ E_K(K_DH‖U_n) ‖ z_n ‖ σ''_n`.
fn read_sponsor(payload: &[u8], un_id: UserId) -> (Vec<u8>, Ubig, GqSignature) {
    let mut r = Reader::new(payload);
    let id = r.get_id().expect("sponsor id");
    assert_eq!(id, un_id);
    let sealed = r.get_bytes().expect("sponsor envelope").to_vec();
    let zn = r.get_ubig().expect("sponsor z_n");
    let s = r.get_ubig().expect("sponsor sig s");
    let c = r.get_ubig().expect("sponsor sig c");
    r.expect_end().expect("no trailing bytes");
    (sealed, zn, GqSignature { s, c })
}

/// One in-flight Join: `newcomer` joins between `U_n` and `U_1`.
pub struct JoinRun {
    exec: Execution<NodeState>,
    base: GroupSession,
    newcomer: UserId,
    newcomer_key: GqSecretKey,
}

impl JoinRun {
    /// Prepares the run; see [`join`] for the protocol contract.
    ///
    /// # Panics
    /// Panics if the session has fewer than 3 members.
    pub fn new(
        session: &GroupSession,
        newcomer: UserId,
        newcomer_key: &GqSecretKey,
        seed: u64,
        composable: bool,
        faults: &Faults,
    ) -> Self {
        let n = session.n();
        assert!(n >= 3, "Join distinguishes U_1, U_n and a bystander");
        let params = Arc::new(session.params.clone());
        let key_material = session.key_material();
        let u1 = session.members[0].clone();
        let un = session.members[n - 1].clone();
        let newcomer_id = newcomer;
        let nk = newcomer_key.clone();
        let z2 = session.z_of(1).clone();
        let zn = session.z_of(n - 1).clone();
        let old_key = session.key.clone();

        // Node order: existing ring 0..n-1, then the newcomer at n.
        let mut ids = session.member_ids();
        ids.push(newcomer);

        let exec = Execution::new(&ids, faults, |i, net_ids| {
            let state = NodeState {
                params: Arc::clone(&params),
                meter: Meter::new(),
                rng: ChaChaRng::seed_from_u64(
                    seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ),
                key_material: key_material.clone(),
                u1_id: u1.id,
                un_id: un.id,
                new_r1: None,
                z1_new: None,
                new_r: None,
                new_z: None,
                derived: None,
                k_star: None,
                k_dh: None,
            };
            let phases = if i == n {
                newcomer_phases(newcomer_id, nk.clone(), [net_ids[0], net_ids[n - 1]])
            } else if i == 0 {
                controller_phases(
                    u1.clone(),
                    z2.clone(),
                    zn.clone(),
                    old_key.clone(),
                    composable,
                    net_ids[1..n].to_vec(),
                )
            } else if i == n - 1 {
                sponsor_phases(
                    un.clone(),
                    net_ids
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != n - 1)
                        .map(|(_, &e)| e)
                        .collect(),
                    net_ids[n],
                )
            } else {
                bystander_phases()
            };
            Engine::new(state, phases)
        });
        JoinRun {
            exec,
            base: session.clone(),
            newcomer,
            newcomer_key: newcomer_key.clone(),
        }
    }

    /// One non-blocking scheduling sweep.
    pub fn pump(&mut self) -> Pump {
        self.exec.pump()
    }

    /// True iff every participant derived the new key.
    pub fn is_done(&self) -> bool {
        self.exec.is_done()
    }

    /// Ops + traffic spent so far (aborted-attempt accounting).
    pub fn partial_counts(&self) -> OpCounts {
        self.exec.partial_counts()
    }

    /// Virtual milliseconds this run has spent on its radio clock (`None`
    /// off-radio).
    pub fn virtual_elapsed_ms(&self) -> Option<f64> {
        self.exec.virtual_now_ms()
    }

    /// Assembles the outcome.
    ///
    /// # Panics
    /// Panics if the run is unfinished or keys diverged.
    pub fn finish(self) -> JoinOutcome {
        assert!(self.exec.is_done(), "finish() before the run completed");
        let n = self.base.n();
        let u1_state = self.exec.machine(0).state();
        let new_key = u1_state.derived.clone().expect("controller derived");
        for i in 0..=n {
            assert_eq!(
                self.exec.machine(i).state().derived.as_ref(),
                Some(&new_key),
                "post-join key diverged at node {i}"
            );
        }
        let mut members = self.base.members.clone();
        members[0].r = u1_state.new_r1.clone().expect("controller refreshed");
        members[0].z = u1_state.z1_new.clone().expect("controller share");
        let nc_state = self.exec.machine(n).state();
        members.push(MemberState {
            id: self.newcomer,
            gq_key: self.newcomer_key.clone(),
            r: nc_state.new_r.clone().expect("newcomer exponent"),
            z: nc_state.new_z.clone().expect("newcomer share"),
            // The newcomer has not yet committed a (τ, t); a fresh pair is
            // produced on its first Leave/Partition round. Zero marks
            // "none".
            tau: Ubig::zero(),
            t: Ubig::zero(),
        });
        let reports: Vec<NodeReport> = (0..=n)
            .map(|i| NodeReport {
                id: if i == n {
                    self.newcomer
                } else {
                    self.base.members[i].id
                },
                key: new_key.clone(),
                counts: self.exec.node_counts(i),
            })
            .collect();
        JoinOutcome {
            session: GroupSession {
                params: self.base.params.clone(),
                members,
                key: new_key,
            },
            reports,
        }
    }
}

/// `U_{n+1}`: announce, authenticate the sponsor, open the handoff.
fn newcomer_phases(
    id: UserId,
    gq_key: GqSecretKey,
    announce_to: [egka_net::NodeId; 2],
) -> Vec<Phase<NodeState>> {
    vec![
        Phase::immediate(move |s: &mut NodeState, _| {
            let share = crate::bd::round1_share(&mut s.rng, &s.params.bd);
            s.meter.record(CompOp::ModExp); // z_{n+1}
            let mut body = Writer::new();
            body.put_id(id).put_ubig(&share.z);
            let sig = s.params.gq.sign(&mut s.rng, &gq_key, &body.finish());
            s.meter.record(CompOp::SignGen(Scheme::Gq));
            let mut w = Writer::new();
            w.put_id(id)
                .put_ubig(&share.z)
                .put_ubig(&sig.s)
                .put_ubig(&sig.c);
            s.new_r = Some(share.r);
            s.new_z = Some(share.z);
            PhaseOut::Send(vec![Outgoing {
                to: Dest::Multicast(announce_to.to_vec()),
                kind: kind::JOIN_ANNOUNCE,
                payload: w.finish(),
                nominal_bits: JOIN_M_NEW_BITS,
            }])
        }),
        Phase::gather(kind::JOIN_SPONSOR, 1, |s: &mut NodeState, pkts| {
            let (sealed_kdh, zn_seen, sig) = read_sponsor(&pkts[0].payload, s.un_id);
            // Verify σ''_n over exactly the bytes U_n signed: sealed ‖ z_n.
            let mut signed = Writer::new();
            signed.put_bytes(&sealed_kdh).put_ubig(&zn_seen);
            let ok = s
                .params
                .gq
                .verify(&s.un_id.to_bytes(), &signed.finish(), &sig);
            s.meter.record(CompOp::SignVerify(Scheme::Gq));
            assert!(ok, "sponsor signature rejected");
            let r = s.new_r.as_ref().expect("announced");
            let k_dh = mod_pow(&zn_seen, r, &s.params.bd.p);
            s.meter.record(CompOp::ModExp);
            s.k_dh = Some(k_dh);
            PhaseOut::Send(Vec::new())
        }),
        Phase::gather(kind::JOIN_HANDOFF, 1, |s: &mut NodeState, pkts| {
            let mut r = Reader::new(&pkts[0].payload);
            let id = r.get_id().expect("handoff id");
            assert_eq!(id, s.un_id);
            let sealed = r.get_bytes().expect("handoff envelope");
            let k_dh = s.k_dh.clone().expect("derived");
            let (ks, _) = open_key(&k_dh.to_bytes_be(), sealed, s.un_id).expect("valid handoff");
            s.meter.record(CompOp::SymDec);
            let key = mod_mul(&ks, &k_dh, &s.params.bd.p);
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        }),
    ]
}

/// `U_1`: authenticate the announcement, refresh `r_1`, re-key the old
/// group with `K*`, then read the sponsor's `K_DH`.
fn controller_phases(
    member: MemberState,
    z2: Ubig,
    zn: Ubig,
    old_key: Ubig,
    composable: bool,
    old_group_minus_u1: Vec<egka_net::NodeId>,
) -> Vec<Phase<NodeState>> {
    vec![
        Phase::gather(kind::JOIN_ANNOUNCE, 1, move |s: &mut NodeState, pkts| {
            let z_new = verify_announce(s, &pkts[0].payload);
            let r1p = loop {
                let r = egka_bigint::random_below(&mut s.rng, &s.params.bd.q);
                if !r.is_zero() {
                    break r;
                }
            };
            // K* = K · (z_2 · z_n)^{−r_1} · (z_2 · z_{n+1})^{r'_1}  (eq. 5)
            let a = mod_mul(&z2, &zn, &s.params.bd.p);
            let a_inv = mod_inverse(&a, &s.params.bd.p).expect("unit");
            s.meter.record(CompOp::ModInv);
            let term1 = mod_pow(&a_inv, &member.r, &s.params.bd.p);
            s.meter.record(CompOp::ModExp);
            let b = mod_mul(&z2, &z_new, &s.params.bd.p);
            let term2 = mod_pow(&b, &r1p, &s.params.bd.p);
            s.meter.record(CompOp::ModExp);
            let ks = mod_mul(
                &mod_mul(&old_key, &term1, &s.params.bd.p),
                &term2,
                &s.params.bd.p,
            );
            // Composable mode: also derive and ship z'_1 (one extra exp).
            let z1p = if composable {
                let z = mod_pow(&s.params.bd.g, &r1p, &s.params.bd.p);
                s.meter.record(CompOp::ModExp);
                Some(z)
            } else {
                None
            };
            let sealed = seal_key(&mut s.rng, &s.key_material, &ks, member.id, z1p.as_ref());
            s.meter.record(CompOp::SymEnc);
            let mut w = Writer::new();
            w.put_id(member.id).put_bytes(&sealed);
            let bits = JOIN_M1_BITS
                + if composable {
                    egka_energy::wire::Z_BITS
                } else {
                    0
                };
            s.z1_new = Some(z1p.unwrap_or_else(|| {
                // Paper-exact mode: z'_1 exists mathematically but is never
                // divulged; the omniscient session bookkeeping recomputes
                // it un-metered (a real peer could not).
                mod_pow(&s.params.bd.g, &r1p, &s.params.bd.p)
            }));
            s.new_r1 = Some(r1p);
            s.k_star = Some(ks);
            PhaseOut::Send(vec![Outgoing {
                to: Dest::Multicast(old_group_minus_u1.clone()),
                kind: kind::JOIN_CONTROLLER,
                payload: w.finish(),
                nominal_bits: bits,
            }])
        }),
        Phase::gather(kind::JOIN_SPONSOR, 1, |s: &mut NodeState, pkts| {
            let (sealed_kdh, _zn, _sig) = read_sponsor(&pkts[0].payload, s.un_id);
            let (kdh, _) =
                open_key(&s.key_material, &sealed_kdh, s.un_id).expect("valid K_DH envelope");
            s.meter.record(CompOp::SymDec);
            let key = mod_mul(s.k_star.as_ref().expect("computed"), &kdh, &s.params.bd.p);
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        }),
    ]
}

/// `U_n`: authenticate the announcement, bridge `K_DH`, relay `K*` to the
/// newcomer under the DH key.
fn sponsor_phases(
    member: MemberState,
    everyone_else: Vec<egka_net::NodeId>,
    newcomer_ep: egka_net::NodeId,
) -> Vec<Phase<NodeState>> {
    vec![
        Phase::gather(kind::JOIN_ANNOUNCE, 1, move |s: &mut NodeState, pkts| {
            let z_new = verify_announce(s, &pkts[0].payload);
            let k_dh = mod_pow(&z_new, &member.r, &s.params.bd.p);
            s.meter.record(CompOp::ModExp);
            let sealed = seal_key(&mut s.rng, &s.key_material, &k_dh, member.id, None);
            s.meter.record(CompOp::SymEnc);
            let mut body = Writer::new();
            body.put_bytes(&sealed).put_ubig(&member.z);
            let sig = s.params.gq.sign(&mut s.rng, &member.gq_key, &body.finish());
            s.meter.record(CompOp::SignGen(Scheme::Gq));
            let mut w = Writer::new();
            w.put_id(member.id)
                .put_bytes(&sealed)
                .put_ubig(&member.z)
                .put_ubig(&sig.s)
                .put_ubig(&sig.c);
            s.k_dh = Some(k_dh);
            // Everyone but U_n itself needs this: the old group decrypts
            // K_DH, the newcomer verifies σ''_n and reads z_n.
            PhaseOut::Send(vec![Outgoing {
                to: Dest::Multicast(everyone_else.clone()),
                kind: kind::JOIN_SPONSOR,
                payload: w.finish(),
                nominal_bits: JOIN_MN_BITS,
            }])
        }),
        Phase::gather(kind::JOIN_CONTROLLER, 1, move |s: &mut NodeState, pkts| {
            let mut r = Reader::new(&pkts[0].payload);
            let id = r.get_id().expect("controller id");
            assert_eq!(id, s.u1_id);
            let sealed = r.get_bytes().expect("controller envelope");
            let (ks, _z1) = open_key(&s.key_material, sealed, s.u1_id).expect("valid K* envelope");
            s.meter.record(CompOp::SymDec);
            let dh_material = s.k_dh.as_ref().expect("bridged").to_bytes_be();
            let sealed2 = seal_key(&mut s.rng, &dh_material, &ks, s.un_id, None);
            s.meter.record(CompOp::SymEnc);
            let mut w = Writer::new();
            w.put_id(s.un_id).put_bytes(&sealed2);
            s.k_star = Some(ks);
            PhaseOut::Send(vec![Outgoing {
                to: Dest::Unicast(newcomer_ep),
                kind: kind::JOIN_HANDOFF,
                payload: w.finish(),
                nominal_bits: JOIN_MNN_BITS,
            }])
        }),
        Phase::immediate(|s: &mut NodeState, _| {
            let key = mod_mul(
                s.k_star.as_ref().expect("opened"),
                s.k_dh.as_ref().expect("bridged"),
                &s.params.bd.p,
            );
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        }),
    ]
}

/// `U_2 … U_{n-1}`: two decryptions, then the new key.
fn bystander_phases() -> Vec<Phase<NodeState>> {
    vec![
        Phase::gather(kind::JOIN_CONTROLLER, 1, |s: &mut NodeState, pkts| {
            let mut r = Reader::new(&pkts[0].payload);
            let _ = r.get_id().expect("controller id");
            let sealed = r.get_bytes().expect("controller envelope");
            let (ks, _z1) = open_key(&s.key_material, sealed, s.u1_id).expect("valid K* envelope");
            s.meter.record(CompOp::SymDec);
            s.k_star = Some(ks);
            PhaseOut::Send(Vec::new())
        }),
        Phase::gather(kind::JOIN_SPONSOR, 1, |s: &mut NodeState, pkts| {
            let (sealed_kdh, _zn, _sig) = read_sponsor(&pkts[0].payload, s.un_id);
            let (kdh, _) =
                open_key(&s.key_material, &sealed_kdh, s.un_id).expect("valid K_DH envelope");
            s.meter.record(CompOp::SymDec);
            let key = mod_mul(s.k_star.as_ref().expect("opened"), &kdh, &s.params.bd.p);
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        }),
    ]
}

/// Runs the Join protocol: `newcomer` (with `newcomer_key`) joins
/// `session` between `U_n` and `U_1`.
///
/// With `composable = true`, `U_1` additionally computes and disseminates
/// its refreshed share `z'_1` inside `m'_1`'s envelope (one extra
/// exponentiation, +1024 nominal bits), closing the specification gap that
/// otherwise leaves the ring unusable for a *subsequent* Leave (see
/// [`crate::dynamics`] module docs).
///
/// # Panics
/// Panics if the session has fewer than 3 members, on any signature or
/// envelope failure, or if the final keys disagree.
pub fn join(
    session: &GroupSession,
    newcomer: UserId,
    newcomer_key: &GqSecretKey,
    seed: u64,
    composable: bool,
) -> JoinOutcome {
    let mut run = JoinRun::new(
        session,
        newcomer,
        newcomer_key,
        seed,
        composable,
        &Faults::none(),
    );
    loop {
        match run.pump() {
            Pump::Done => return run.finish(),
            Pump::Progressed => {}
            other => panic!("join cannot {other:?} on a reliable medium"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::testutil::{new_member, session};
    use egka_energy::complexity::proposed_join;

    #[test]
    fn join_agrees_and_preserves_invariant() {
        let (pkg, s0) = session(4, 1);
        let nk = new_member(&pkg, 4);
        let out = join(&s0, UserId(4), &nk, 99, true);
        assert_eq!(out.session.n(), 5);
        assert!(out.session.invariant_holds(), "ring invariant after join");
        assert_ne!(out.session.key, s0.key, "key must change");
    }

    #[test]
    fn paper_mode_counts_match_table5_closed_form() {
        let (pkg, s0) = session(6, 2);
        let nk = new_member(&pkg, 6);
        let out = join(&s0, UserId(6), &nk, 100, false);
        let roles = proposed_join(6);
        // Role order in closed form: U1, Un, Un+1, Others.
        let u1 = &out.reports[0].counts;
        let un = &out.reports[5].counts;
        let nc = &out.reports[6].counts;
        let by = &out.reports[2].counts;
        for (got, want, name) in [
            (u1, &roles[0].counts, "U1"),
            (un, &roles[1].counts, "Un"),
            (nc, &roles[2].counts, "Un+1"),
            (by, &roles[3].counts, "Others"),
        ] {
            assert_eq!(got.exps(), want.exps(), "{name} exps");
            assert_eq!(
                got.get(CompOp::SignGen(Scheme::Gq)),
                want.get(CompOp::SignGen(Scheme::Gq)),
                "{name} sign gen"
            );
            assert_eq!(
                got.get(CompOp::SignVerify(Scheme::Gq)),
                want.get(CompOp::SignVerify(Scheme::Gq)),
                "{name} sign ver"
            );
            assert_eq!(got.tx_bits, want.tx_bits, "{name} tx bits");
            assert_eq!(got.rx_bits, want.rx_bits, "{name} rx bits");
            assert_eq!(got.msgs_tx, want.msgs_tx, "{name} msgs tx");
            assert_eq!(got.msgs_rx, want.msgs_rx, "{name} msgs rx");
        }
    }

    #[test]
    fn composable_mode_costs_one_more_exp_at_u1() {
        let (pkg, s0) = session(4, 3);
        let nk = new_member(&pkg, 4);
        let paper = join(&s0, UserId(4), &nk, 7, false);
        let comp = join(&s0, UserId(4), &nk, 7, true);
        assert_eq!(
            comp.reports[0].counts.exps(),
            paper.reports[0].counts.exps() + 1
        );
        assert_eq!(
            comp.reports[0].counts.tx_bits,
            paper.reports[0].counts.tx_bits + egka_energy::wire::Z_BITS
        );
    }

    #[test]
    fn paper_mode_session_still_bookkeeps_ring() {
        // Even without disseminating z'_1 the omniscient session state must
        // stay consistent (it models "what the math is", not "who knows it").
        let (pkg, s0) = session(4, 4);
        let nk = new_member(&pkg, 4);
        let out = join(&s0, UserId(4), &nk, 8, false);
        assert!(out.session.invariant_holds());
    }

    #[test]
    fn forged_announcement_is_rejected() {
        let (pkg, s0) = session(4, 5);
        // Key extracted for a DIFFERENT identity: the announcement
        // signature cannot verify as U9.
        let wrong_key = new_member(&pkg, 8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join(&s0, UserId(9), &wrong_key, 9, true)
        }));
        assert!(
            result.is_err(),
            "announcement under mismatched key must fail"
        );
    }
}
