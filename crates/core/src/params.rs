//! Protocol parameters and the PKG's Setup (paper §4).
//!
//! The paper's Setup produces two algebraic structures:
//!
//! * a **Schnorr group** — 1024-bit prime `p`, 160-bit prime `q | p − 1`,
//!   generator `g` of the order-`q` subgroup (the BD key-agreement group);
//! * a **GQ instance** — RSA modulus `n = p'·q'` with 512-bit factors and a
//!   161-bit prime exponent `e` (the ID-based signature ring).
//!
//! Energy accounting always uses the paper's nominal sizes (1024-bit group
//! elements, 32-bit identities …) regardless of the *actual* parameter
//! sizes, so tests and large sweeps can run on smaller, faster parameters
//! ([`SecurityProfile::Toy`]) while producing exactly the operation counts
//! and wire bits the paper's cost model prices. The full 1024-bit
//! [`SecurityProfile::Paper`] profile is embedded as a pinned fixture
//! (regeneration takes minutes) and exercised by `#[ignore]`d slow tests.

use egka_bigint::{gen_schnorr_group, SchnorrGroup, Ubig};
use egka_sig::{GqPkg, GqSecretKey};
use rand::Rng;

use crate::ident::UserId;

/// How big the actual algebra is. Accounting sizes are profile-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SecurityProfile {
    /// Paper-exact: 1024-bit `p`, 160-bit `q`, 512-bit GQ factors,
    /// 161-bit `e`.
    Paper,
    /// Mid-size for integration tests: 512-bit `p`, 160-bit `q`, 256-bit GQ
    /// factors.
    Medium,
    /// Small and fast for unit tests and big-`n` sweeps: 256-bit `p`,
    /// 96-bit `q`, 128-bit GQ factors, 41-bit `e`.
    Toy,
}

impl SecurityProfile {
    /// `(p_bits, q_bits, gq_factor_bits, gq_e_bits)`.
    pub fn sizes(self) -> (u32, u32, u32, u32) {
        match self {
            SecurityProfile::Paper => (1024, 160, 512, 161),
            SecurityProfile::Medium => (512, 160, 256, 161),
            SecurityProfile::Toy => (256, 96, 128, 41),
        }
    }
}

/// The public protocol parameters shared by every group member.
#[derive(Clone, Debug)]
pub struct Params {
    /// The BD group `(p, q, g)`.
    pub bd: SchnorrGroup,
    /// The GQ signature parameters `(n, e)`.
    pub gq: egka_sig::GqParams,
    /// Which profile generated these parameters.
    pub profile: SecurityProfile,
}

/// The Private Key Generator: owns the GQ master key and extracts ID keys.
pub struct Pkg {
    params: Params,
    gq_pkg: GqPkg,
}

impl Pkg {
    /// Runs the paper's Setup under `profile`.
    pub fn setup<R: Rng + ?Sized>(rng: &mut R, profile: SecurityProfile) -> Self {
        let (p_bits, q_bits, factor_bits, e_bits) = profile.sizes();
        let bd = gen_schnorr_group(rng, p_bits, q_bits);
        let gq_pkg = GqPkg::setup_with_e_bits(rng, factor_bits, e_bits);
        Pkg {
            params: Params {
                bd,
                gq: gq_pkg.params.clone(),
                profile,
            },
            gq_pkg,
        }
    }

    /// Builds the PKG around pre-generated parameters (fixtures).
    pub fn from_parts(bd: SchnorrGroup, gq_pkg: GqPkg, profile: SecurityProfile) -> Self {
        Pkg {
            params: Params {
                bd,
                gq: gq_pkg.params.clone(),
                profile,
            },
            gq_pkg,
        }
    }

    /// The public parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Extracts the ID-based key for `id` (paper's Extract).
    pub fn extract(&self, id: UserId) -> GqSecretKey {
        self.gq_pkg.extract(&id.to_bytes())
    }

    /// Extracts keys for ids `0..n` (the usual test group).
    pub fn extract_group(&self, n: u32) -> Vec<GqSecretKey> {
        (0..n).map(|i| self.extract(UserId(i))).collect()
    }
}

/// The pinned paper-profile fixture (1024-bit BD group, 1024-bit GQ
/// modulus). Generated once offline; every invariant is re-validated by the
/// `paper_fixture_validates` test below (and cheap structural checks run on
/// every construction).
pub fn paper_fixture() -> Pkg {
    let h = |s: &str| Ubig::from_hex(s).expect("valid fixture hex");
    let bd = SchnorrGroup {
        p: h(BD_P_HEX),
        q: h(BD_Q_HEX),
        g: h(BD_G_HEX),
    };
    let gq_pkg = GqPkg::from_master(h(GQ_P_HEX), h(GQ_Q_HEX), h(GQ_E_HEX));
    Pkg::from_parts(bd, gq_pkg, SecurityProfile::Paper)
}

// 1024-bit Schnorr group (q | p − 1, g of order q), generated offline with
// an independent implementation and re-validated by tests.
pub(crate) const BD_P_HEX: &str = "81d8fbb15d144ec5bedd4dc79c1640e85fb10a78c32de4b8f6f0e279bc50a2be309fdece6e95c1df1505bed6272ab50613df3e95d2761bc590d2f53b2dc6f82e9cfc1ef418366d5fb8263c22777cc9e442de47bf581a3a2a46bf678d4817e6f0b5537e5d58bf305916955adb96c3cc3d0e28cf84d1123ab8d9bf1a9664b4f1b9";
pub(crate) const BD_Q_HEX: &str = "8f7d722bac146efe0e4a90096fdff2572806891f";
pub(crate) const BD_G_HEX: &str = "29680b05bfae05dd41fa48712327dd1cc6e976f9b816239b0940589b955151f533d1c90e25b59ceade3516856a12de2bbd5d6bc60ac0d105e50b08a054d4c008ada0110b050103a7b66cc4b564b054defd282a9b044b1d3077ac0af8c9acfab36a3aad7f0648835feacc45bf73128a68ef644d56550a1275193aebafb3827d30";
// 512-bit GQ prime factors and 161-bit prime exponent.
pub(crate) const GQ_P_HEX: &str = "d76361975d9d8e8fa784d2cc168d6a94d6a3ffd4a59ef0a421f311d62ab7c5b7b5f20a6393ab460127a44aec5a09f86598da3bfcc6a7711331dbded1439825e3";
pub(crate) const GQ_Q_HEX: &str = "e926b1d850dda4995032399559f950a1d5a5b7ba7460e7f524e2f8ab3741d8d9214534c342e2fd2b33f1ce71e2fb5294e517298a6b150ea3bfe18e86726daeb5";
pub(crate) const GQ_E_HEX: &str = "1a636a0be83d924dc0e43f27fad6836796b744287";

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    #[test]
    fn toy_setup_produces_valid_group() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        assert!(pkg.params().bd.validate(&mut rng));
        assert_eq!(pkg.params().bd.p.bit_length(), 256);
        assert_eq!(pkg.params().bd.q.bit_length(), 96);
    }

    #[test]
    fn extraction_is_deterministic_per_id() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        assert_eq!(pkg.extract(UserId(5)), pkg.extract(UserId(5)));
        assert_ne!(pkg.extract(UserId(5)).s_id, pkg.extract(UserId(6)).s_id);
    }

    #[test]
    fn extracted_keys_satisfy_gq_identity() {
        let mut rng = ChaChaRng::seed_from_u64(3);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let key = pkg.extract(UserId(0));
        let lhs = egka_bigint::mod_pow(&key.s_id, &pkg.params().gq.e, &pkg.params().gq.n);
        assert_eq!(lhs, pkg.params().gq.hash_id(&UserId(0).to_bytes()));
    }

    #[test]
    fn paper_fixture_structural_checks() {
        let pkg = paper_fixture();
        assert_eq!(pkg.params().bd.p.bit_length(), 1024);
        assert_eq!(pkg.params().bd.q.bit_length(), 160);
        assert_eq!(pkg.params().gq.n.bit_length(), 1024);
        assert_eq!(pkg.params().gq.e.bit_length(), 161);
        // q | p − 1 and g^q = 1
        let p_minus_1 = pkg.params().bd.p.checked_sub(&Ubig::one()).unwrap();
        assert!(p_minus_1.rem_ref(&pkg.params().bd.q).is_zero());
        assert!(
            egka_bigint::mod_pow(&pkg.params().bd.g, &pkg.params().bd.q, &pkg.params().bd.p)
                .is_one()
        );
    }

    /// Full (slow) probabilistic validation of the fixture primes.
    #[test]
    #[ignore = "primality of 1024-bit fixture parameters; run with --ignored"]
    fn paper_fixture_validates() {
        let mut rng = ChaChaRng::seed_from_u64(4);
        let pkg = paper_fixture();
        assert!(pkg.params().bd.validate(&mut rng));
        // Sign/verify at full size.
        let key = pkg.extract(UserId(1));
        let sig = pkg.params().gq.sign(&mut rng, &key, b"paper-size smoke");
        assert!(pkg
            .params()
            .gq
            .verify(&UserId(1).to_bytes(), b"paper-size smoke", &sig));
    }
}
