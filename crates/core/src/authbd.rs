//! The paper's authenticated-BD baselines (Table 1 columns 2–4): BD where
//! every user signs its Round-2 message with SOK, ECDSA or DSA, and every
//! receiver verifies all `n − 1` signatures individually.
//!
//! The signed message is the paper's `m_i = U_i ‖ z_i ‖ X_i ‖ ∏ z_j` (§5),
//! which binds both rounds' keying material under one signature — that is
//! why only one signature generation is needed even though two messages are
//! broadcast. Certificate-based schemes additionally ship the sender's
//! certificate in Round 1; receivers verify each certificate **once**
//! ([`egka_sig::CertStore`] caches — the accounting convention Table 5's
//! joules pin down).
//!
//! These baselines run the same BD core, the same medium, and the same
//! metering as the proposed protocol, so Figure 1's curves come from
//! directly comparable instrumented executions.

use egka_bigint::{mod_mul, SchnorrGroup, Ubig};
use egka_energy::complexity::InitialProtocol;
use egka_energy::{CompOp, Meter, Scheme};
use egka_hash::ChaChaRng;
use egka_net::{Endpoint, Medium};
use egka_sig::{
    CaPublic, CertCheck, CertStore, Certificate, CertificateAuthority, Dsa, DsaKeyPair,
    DsaSignature, Ecdsa, EcdsaKeyPair, EcdsaSignature, SokParams, SokPkg, SokSecretKey,
    SokSignature, SubjectKey,
};
use rand::{Rng, SeedableRng};

use crate::bd;
use crate::ident::UserId;
use crate::par::par_for_each_mut;
use crate::proposed::{NodeReport, RunReport};
use crate::wire::{kind, Reader, Writer};

/// Credentials for one authenticated-BD variant, for the whole group.
pub enum AuthKit {
    /// SOK (pairing-based, ID-based: no certificates).
    Sok {
        /// Public parameters (pairing group + master public key).
        params: SokParams,
        /// Per-user extracted keys, ring order.
        keys: Vec<SokSecretKey>,
    },
    /// ECDSA with certificates.
    Ecdsa {
        /// Scheme instance (curve).
        scheme: Ecdsa,
        /// Per-user key pairs.
        keys: Vec<EcdsaKeyPair>,
        /// Per-user certificates issued by the CA.
        certs: Vec<Certificate>,
        /// The CA's verification key.
        ca: CaPublic,
    },
    /// DSA with certificates.
    Dsa {
        /// Scheme instance (Schnorr group).
        scheme: Dsa,
        /// Per-user key pairs.
        keys: Vec<DsaKeyPair>,
        /// Per-user certificates issued by the CA.
        certs: Vec<Certificate>,
        /// The CA's verification key.
        ca: CaPublic,
    },
}

impl AuthKit {
    /// Which Table 1 column this kit instantiates.
    pub fn protocol(&self) -> InitialProtocol {
        match self {
            AuthKit::Sok { .. } => InitialProtocol::BdSok,
            AuthKit::Ecdsa { .. } => InitialProtocol::BdEcdsa,
            AuthKit::Dsa { .. } => InitialProtocol::BdDsa,
        }
    }

    /// Group size this kit was provisioned for.
    pub fn n(&self) -> usize {
        match self {
            AuthKit::Sok { keys, .. } => keys.len(),
            AuthKit::Ecdsa { keys, .. } => keys.len(),
            AuthKit::Dsa { keys, .. } => keys.len(),
        }
    }

    /// Provisions a SOK deployment: PKG setup + per-user extraction.
    pub fn setup_sok<R: Rng + ?Sized>(rng: &mut R, group: egka_ec::PairingGroup, n: usize) -> Self {
        let pkg = SokPkg::setup(rng, group);
        let keys = (0..n)
            .map(|i| pkg.extract(&UserId(i as u32).to_bytes()))
            .collect();
        AuthKit::Sok {
            params: pkg.params,
            keys,
        }
    }

    /// Provisions an ECDSA deployment: CA + per-user keys + certificates.
    pub fn setup_ecdsa<R: Rng + ?Sized>(rng: &mut R, scheme: Ecdsa, n: usize) -> Self {
        let mut ca = CertificateAuthority::new_ecdsa(rng, b"egka-ca", scheme.clone());
        let keys: Vec<EcdsaKeyPair> = (0..n).map(|_| scheme.keygen(rng)).collect();
        let certs = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                ca.issue(
                    rng,
                    &UserId(i as u32).to_bytes(),
                    SubjectKey::Ecdsa(k.q.clone()),
                )
            })
            .collect();
        AuthKit::Ecdsa {
            ca: ca.public(),
            scheme,
            keys,
            certs,
        }
    }

    /// Provisions a DSA deployment: CA + per-user keys + certificates.
    pub fn setup_dsa<R: Rng + ?Sized>(rng: &mut R, scheme: Dsa, n: usize) -> Self {
        let mut ca = CertificateAuthority::new_dsa(rng, b"egka-ca", scheme.clone());
        let keys: Vec<DsaKeyPair> = (0..n).map(|_| scheme.keygen(rng)).collect();
        let certs = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                ca.issue(
                    rng,
                    &UserId(i as u32).to_bytes(),
                    SubjectKey::Dsa(k.y.clone()),
                )
            })
            .collect();
        AuthKit::Dsa {
            ca: ca.public(),
            scheme,
            keys,
            certs,
        }
    }
}

/// One node's signing/verifying half, extracted from the kit.
// Variant sizes differ by scheme; nodes hold exactly one for a whole run.
#[allow(clippy::large_enum_variant)]
enum NodeAuth {
    Sok {
        params: SokParams,
        key: SokSecretKey,
    },
    Ecdsa {
        scheme: Ecdsa,
        key: EcdsaKeyPair,
        cert: Certificate,
        ca: CaPublic,
    },
    Dsa {
        scheme: Dsa,
        key: DsaKeyPair,
        cert: Certificate,
        ca: CaPublic,
    },
}

struct Node {
    idx: usize,
    id: UserId,
    auth: NodeAuth,
    ep: Endpoint,
    meter: Meter,
    rng: ChaChaRng,
    store: CertStore,
    share: Option<bd::Share>,
    zs: Vec<Ubig>,
    xs: Vec<Ubig>,
    sigs: Vec<Vec<u8>>,
    certs: Vec<Option<Certificate>>,
    /// Identities whose `Q_ID` MapToPoint has been charged (SOK).
    mapped_ids: Vec<bool>,
    derived: Option<Ubig>,
}

/// The signed Round-2 message `U_i ‖ z_i ‖ X_i ‖ ∏ z_j`.
fn signed_message(id: UserId, z: &Ubig, x: &Ubig, z_prod: &Ubig) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_id(id).put_ubig(z).put_ubig(x).put_ubig(z_prod);
    w.finish().to_vec()
}

/// Runs an authenticated-BD exchange over `bd_group` with the credentials
/// in `kit`. Returns per-node reports (keys + instrumented counts).
///
/// # Panics
/// Panics if any certificate or signature fails to verify (these baselines
/// model honest groups; fault injection lives in the proposed protocol).
pub fn run(bd_group: &SchnorrGroup, kit: &AuthKit, seed: u64) -> RunReport {
    run_with_trust(bd_group, kit, seed, |_, _| false)
}

/// [`run`] with pre-seeded certificate trust: `already_trusts(i, j)` says
/// whether node `i` verified node `j`'s certificate in an earlier session.
/// Pre-trusted certificates skip the `CertVerify` charge — the accounting
/// convention behind Table 5's BD re-execution rows (returning members pay
/// only for *new* certificates; a Join's newcomer pays for all `n`).
pub fn run_with_trust(
    bd_group: &SchnorrGroup,
    kit: &AuthKit,
    seed: u64,
    already_trusts: impl Fn(usize, usize) -> bool,
) -> RunReport {
    let n = kit.n();
    assert!(n >= 2, "a group needs at least two members");
    let proto = kit.protocol();
    let medium = Medium::new();
    let mut nodes: Vec<Node> = (0..n)
        .map(|i| Node {
            idx: i,
            id: UserId(i as u32),
            auth: match kit {
                AuthKit::Sok { params, keys } => NodeAuth::Sok {
                    params: params.clone(),
                    key: keys[i].clone(),
                },
                AuthKit::Ecdsa {
                    scheme,
                    keys,
                    certs,
                    ca,
                } => NodeAuth::Ecdsa {
                    scheme: scheme.clone(),
                    key: keys[i].clone(),
                    cert: certs[i].clone(),
                    ca: ca.clone(),
                },
                AuthKit::Dsa {
                    scheme,
                    keys,
                    certs,
                    ca,
                } => NodeAuth::Dsa {
                    scheme: scheme.clone(),
                    key: keys[i].clone(),
                    cert: certs[i].clone(),
                    ca: ca.clone(),
                },
            },
            ep: medium.join(),
            meter: Meter::new(),
            rng: ChaChaRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)),
            store: CertStore::new(),
            share: None,
            zs: vec![Ubig::zero(); n],
            xs: vec![Ubig::zero(); n],
            sigs: vec![Vec::new(); n],
            certs: vec![None; n],
            mapped_ids: vec![false; n],
            derived: None,
        })
        .collect();

    // Pre-seed certificate trust (prior-session verifications).
    if let AuthKit::Ecdsa { certs, ca, .. } | AuthKit::Dsa { certs, ca, .. } = kit {
        for (i, node) in nodes.iter_mut().enumerate() {
            for (j, cert) in certs.iter().enumerate() {
                if i != j && already_trusts(i, j) {
                    let outcome = node.store.check(cert, &UserId(j as u32).to_bytes(), ca);
                    assert_eq!(outcome, CertCheck::NewlyVerified);
                }
            }
        }
    }

    // ---- Round 1: broadcast U_i ‖ z_i (‖ cert_i) ----
    par_for_each_mut(&mut nodes, |_, node| {
        let share = bd::round1_share(&mut node.rng, bd_group);
        node.meter.record(CompOp::ModExp);
        let mut w = Writer::new();
        w.put_id(node.id).put_ubig(&share.z);
        match &node.auth {
            NodeAuth::Sok { .. } => {
                w.put_bytes(&[]);
            }
            NodeAuth::Ecdsa { cert, .. } | NodeAuth::Dsa { cert, .. } => {
                w.put_bytes(&cert.encode());
            }
        }
        node.ep
            .broadcast(kind::ROUND1, w.finish(), proto.round1_bits());
        node.zs[node.idx] = share.z.clone();
        node.share = Some(share);
    });
    par_for_each_mut(&mut nodes, |_, node| {
        for _ in 0..n - 1 {
            let pkt = node.ep.recv_kind(kind::ROUND1);
            let mut r = Reader::new(&pkt.payload);
            let id = r.get_id().expect("round-1 id");
            let z = r.get_ubig().expect("round-1 z");
            let cert_bytes = r.get_bytes().expect("round-1 cert field");
            r.expect_end().expect("no trailing bytes");
            let j = id.0 as usize;
            node.zs[j] = z;
            if !cert_bytes.is_empty() {
                node.certs[j] = Some(Certificate::decode(cert_bytes).expect("valid cert bytes"));
            }
        }
        // Verify newly seen certificates (cached per CertStore).
        if let NodeAuth::Ecdsa { ca, .. } | NodeAuth::Dsa { ca, .. } = &node.auth {
            let scheme = match &node.auth {
                NodeAuth::Ecdsa { .. } => Scheme::Ecdsa,
                _ => Scheme::Dsa,
            };
            for j in 0..n {
                if j == node.idx {
                    continue;
                }
                let cert = node.certs[j].as_ref().expect("cert schemes ship certs");
                match node.store.check(cert, &UserId(j as u32).to_bytes(), ca) {
                    CertCheck::NewlyVerified => node.meter.record(CompOp::CertVerify(scheme)),
                    CertCheck::AlreadyTrusted => {}
                    CertCheck::Rejected => panic!("honest-run certificate rejected"),
                }
            }
        }
    });

    // ---- Round 2: compute X_i, sign m_i, broadcast U_i ‖ X_i ‖ σ_i ----
    par_for_each_mut(&mut nodes, |_, node| {
        let share = node.share.as_ref().expect("round 1 done");
        let x = bd::round2_x(
            bd_group,
            &share.r,
            &node.zs[(node.idx + n - 1) % n],
            &node.zs[(node.idx + 1) % n],
        );
        node.meter.record(CompOp::ModExp);
        node.meter.record(CompOp::ModInv);
        let z_prod = node
            .zs
            .iter()
            .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &bd_group.p));
        let msg = signed_message(node.id, &share.z, &x, &z_prod);
        let sig_bytes = match &node.auth {
            NodeAuth::Sok { params, key } => {
                let sig = params.sign(&mut node.rng, key, &msg);
                node.meter.record(CompOp::SignGen(Scheme::Sok));
                let curve = params.group().curve();
                let mut w = Writer::new();
                w.put_bytes(&curve.compress(&sig.s1))
                    .put_bytes(&curve.compress(&sig.s2));
                w.finish().to_vec()
            }
            NodeAuth::Ecdsa { scheme, key, .. } => {
                let sig = scheme.sign(&mut node.rng, key, &msg);
                node.meter.record(CompOp::SignGen(Scheme::Ecdsa));
                let mut w = Writer::new();
                w.put_ubig(&sig.r).put_ubig(&sig.s);
                w.finish().to_vec()
            }
            NodeAuth::Dsa { scheme, key, .. } => {
                let sig = scheme.sign(&mut node.rng, key, &msg);
                node.meter.record(CompOp::SignGen(Scheme::Dsa));
                let mut w = Writer::new();
                w.put_ubig(&sig.r).put_ubig(&sig.s);
                w.finish().to_vec()
            }
        };
        node.xs[node.idx] = x;
        node.sigs[node.idx] = sig_bytes;
    });
    // Controller-last ordering, as in the proposed protocol.
    let send = |node: &Node| {
        let mut w = Writer::new();
        w.put_id(node.id)
            .put_ubig(&node.xs[node.idx])
            .put_bytes(&node.sigs[node.idx]);
        node.ep
            .broadcast(kind::ROUND2, w.finish(), proto.round2_bits());
    };
    for node in nodes.iter().skip(1) {
        send(node);
    }
    {
        let controller = &mut nodes[0];
        for _ in 0..n - 1 {
            let pkt = controller.ep.recv_kind(kind::ROUND2);
            store_round2(controller, &pkt.payload);
        }
        send(&nodes[0]);
    }
    par_for_each_mut(&mut nodes[1..], |_, node| {
        for _ in 0..n - 1 {
            let pkt = node.ep.recv_kind(kind::ROUND2);
            store_round2(node, &pkt.payload);
        }
    });

    // ---- Verify all n−1 signatures, then derive the key ----
    par_for_each_mut(&mut nodes, |_, node| {
        let z_prod = node
            .zs
            .iter()
            .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &bd_group.p));
        for j in 0..n {
            if j == node.idx {
                continue;
            }
            let msg = signed_message(UserId(j as u32), &node.zs[j], &node.xs[j], &z_prod);
            let ok = verify_one(node, j, &msg);
            assert!(ok, "honest-run signature from U{j} rejected");
        }
        let share = node.share.as_ref().expect("round 1 done");
        let ring: Vec<Ubig> = (0..n)
            .map(|k| node.xs[(node.idx + k) % n].clone())
            .collect();
        let key = bd::compute_key(bd_group, &share.r, &node.zs[(node.idx + n - 1) % n], &ring);
        node.meter.record(CompOp::ModExp);
        node.derived = Some(key);
    });

    let nodes_out: Vec<NodeReport> = nodes
        .iter()
        .map(|node| {
            let mut counts = node.meter.snapshot();
            let stats = medium.stats(node.ep.id());
            counts.tx_bits = stats.tx_bits;
            counts.rx_bits = stats.rx_bits;
            counts.tx_bits_actual = stats.tx_bits_actual;
            counts.rx_bits_actual = stats.rx_bits_actual;
            counts.msgs_tx = stats.msgs_tx;
            counts.msgs_rx = stats.msgs_rx;
            NodeReport {
                id: node.id,
                key: node.derived.clone().expect("derived"),
                counts,
            }
        })
        .collect();
    let report = RunReport {
        nodes: nodes_out,
        attempts: 1,
    };
    assert!(report.keys_agree(), "authenticated BD keys must agree");
    report
}

fn store_round2(node: &mut Node, payload: &[u8]) {
    let mut r = Reader::new(payload);
    let id = r.get_id().expect("round-2 id");
    let x = r.get_ubig().expect("round-2 X");
    let sig = r.get_bytes().expect("round-2 signature");
    r.expect_end().expect("no trailing bytes");
    let j = id.0 as usize;
    node.xs[j] = x;
    node.sigs[j] = sig.to_vec();
}

/// Verifies sender `j`'s signature, recording the ops the paper prices:
/// one `SignVerify` per message, plus (SOK) one `MapToPoint` per *new*
/// identity. (The SOK verifier really performs a second MapToPoint for the
/// message hash; the paper's Table 1 only counts the identity ones, so the
/// message MapToPoint is recorded as a free `Hash` — see `EXPERIMENTS.md`.)
fn verify_one(node: &mut Node, j: usize, msg: &[u8]) -> bool {
    let jid = UserId(j as u32);
    match &node.auth {
        NodeAuth::Sok { params, .. } => {
            if !node.mapped_ids[j] {
                node.meter.record(CompOp::MapToPoint);
                node.mapped_ids[j] = true;
            }
            node.meter.record(CompOp::Hash); // the Q_M MapToPoint, unpriced
            node.meter.record(CompOp::SignVerify(Scheme::Sok));
            let mut r = Reader::new(&node.sigs[j]);
            let (Ok(s1), Ok(s2)) = (r.get_bytes(), r.get_bytes()) else {
                return false;
            };
            let curve = params.group().curve();
            let (Some(s1), Some(s2)) = (curve.decompress(s1), curve.decompress(s2)) else {
                return false;
            };
            params.verify(&jid.to_bytes(), msg, &SokSignature { s1, s2 })
        }
        NodeAuth::Ecdsa { scheme, .. } => {
            node.meter.record(CompOp::SignVerify(Scheme::Ecdsa));
            let Some(SubjectKey::Ecdsa(q)) = node.certs[j].as_ref().map(|c| c.key.clone()) else {
                return false;
            };
            let mut r = Reader::new(&node.sigs[j]);
            let (Ok(sr), Ok(ss)) = (r.get_ubig(), r.get_ubig()) else {
                return false;
            };
            scheme.verify(&q, msg, &EcdsaSignature { r: sr, s: ss })
        }
        NodeAuth::Dsa { scheme, .. } => {
            node.meter.record(CompOp::SignVerify(Scheme::Dsa));
            let Some(SubjectKey::Dsa(y)) = node.certs[j].as_ref().map(|c| c.key.clone()) else {
                return false;
            };
            let mut r = Reader::new(&node.sigs[j]);
            let (Ok(sr), Ok(ss)) = (r.get_ubig(), r.get_ubig()) else {
                return false;
            };
            scheme.verify(&y, msg, &DsaSignature { r: sr, s: ss })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_energy::OpCounts;

    fn bd_group() -> SchnorrGroup {
        let mut rng = ChaChaRng::seed_from_u64(0x41424400);
        egka_bigint::gen_schnorr_group(&mut rng, 192, 64)
    }

    fn assert_counts(report: &RunReport, expect: &OpCounts) {
        for node in &report.nodes {
            for i in 0..egka_energy::NUM_OPS {
                let op = CompOp::from_index(i).unwrap();
                if matches!(op, CompOp::Hash | CompOp::ModInv | CompOp::ModMul) {
                    continue; // unpriced bookkeeping ops
                }
                assert_eq!(
                    node.counts.comp[i], expect.comp[i],
                    "{}: op {op:?}",
                    node.id
                );
            }
            assert_eq!(node.counts.msgs_tx, expect.msgs_tx, "{}", node.id);
            assert_eq!(node.counts.msgs_rx, expect.msgs_rx, "{}", node.id);
            assert_eq!(node.counts.tx_bits, expect.tx_bits, "{}", node.id);
            assert_eq!(node.counts.rx_bits, expect.rx_bits, "{}", node.id);
        }
    }

    #[test]
    fn ecdsa_baseline_agrees_and_matches_closed_form() {
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let kit = AuthKit::setup_ecdsa(&mut rng, Ecdsa::new(egka_ec::secp160r1()), 5);
        let report = run(&g, &kit, 2);
        assert!(report.keys_agree());
        assert_counts(&report, &InitialProtocol::BdEcdsa.per_user_counts(5));
    }

    #[test]
    fn dsa_baseline_agrees_and_matches_closed_form() {
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(2);
        let dsa = Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 256, 96));
        let kit = AuthKit::setup_dsa(&mut rng, dsa, 4);
        let report = run(&g, &kit, 3);
        assert!(report.keys_agree());
        assert_counts(&report, &InitialProtocol::BdDsa.per_user_counts(4));
    }

    #[test]
    fn sok_baseline_agrees_and_matches_closed_form() {
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let pairing = egka_ec::gen_pairing_group(&mut rng, 96, 64);
        let kit = AuthKit::setup_sok(&mut rng, pairing, 4);
        let report = run(&g, &kit, 4);
        assert!(report.keys_agree());
        assert_counts(&report, &InitialProtocol::BdSok.per_user_counts(4));
    }

    #[test]
    fn all_baselines_derive_identical_bd_key_distribution() {
        // Same BD group + same seed ⇒ the BD layer derives keys
        // independently of the authentication wrapper.
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let kit_e = AuthKit::setup_ecdsa(&mut rng, Ecdsa::new(egka_ec::secp160r1()), 3);
        let r1 = run(&g, &kit_e, 77);
        let r2 = run(&g, &kit_e, 77);
        assert_eq!(r1.key(), r2.key(), "deterministic given the seed");
        let r3 = run(&g, &kit_e, 78);
        assert_ne!(r1.key(), r3.key());
    }
}
