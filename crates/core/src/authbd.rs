//! The paper's authenticated-BD baselines (Table 1 columns 2–4): BD where
//! every user signs its Round-2 message with SOK, ECDSA or DSA, and every
//! receiver verifies all `n − 1` signatures individually.
//!
//! The signed message is the paper's `m_i = U_i ‖ z_i ‖ X_i ‖ ∏ z_j` (§5),
//! which binds both rounds' keying material under one signature — that is
//! why only one signature generation is needed even though two messages are
//! broadcast. Certificate-based schemes additionally ship the sender's
//! certificate in Round 1; receivers verify each certificate **once**
//! ([`egka_sig::CertStore`] caches — the accounting convention Table 5's
//! joules pin down).
//!
//! These baselines run the same BD core, the same medium, the same sans-IO
//! round machines ([`crate::machine`]) and the same metering as the
//! proposed protocol, so Figure 1's curves come from directly comparable
//! instrumented executions.

use std::sync::Arc;

use egka_bigint::{mod_mul, SchnorrGroup, Ubig};
use egka_energy::complexity::InitialProtocol;
use egka_energy::{CompOp, Meter, Scheme};
use egka_hash::ChaChaRng;
use egka_sig::{
    dsa_batch_verify, ecdsa_batch_verify, CaPublic, CertCheck, CertStore, Certificate,
    CertificateAuthority, Dsa, DsaBatchItem, DsaKeyPair, DsaSignature, Ecdsa, EcdsaBatchItem,
    EcdsaKeyPair, EcdsaSignature, SokParams, SokPkg, SokSecretKey, SokSignature, SubjectKey,
};
use rand::{Rng, SeedableRng};

use crate::bd;
use crate::ident::{ring_position, UserId};
use crate::machine::{
    two_round_script, Dest, Engine, Execution, Faults, Metered, Outgoing, PhaseOut, Pump,
};
use crate::proposed::{NodeReport, RunReport};
use crate::wire::{kind, Reader, Writer};

/// Credentials for one authenticated-BD variant, for the whole group.
///
/// A kit is provisioned either for the canonical ring `U_0 … U_{n−1}`
/// ([`AuthKit::setup_sok`] & co.) or for an arbitrary identity set
/// ([`AuthKit::setup_sok_for`] & co.) — the latter is what lets these
/// baselines run as service-managed suites over real member ids.
pub enum AuthKit {
    /// SOK (pairing-based, ID-based: no certificates).
    Sok {
        /// Public parameters (pairing group + master public key).
        params: SokParams,
        /// Per-user extracted keys, ring order.
        keys: Vec<SokSecretKey>,
        /// Member identities, ring order.
        ids: Vec<UserId>,
    },
    /// ECDSA with certificates.
    Ecdsa {
        /// Scheme instance (curve).
        scheme: Ecdsa,
        /// Per-user key pairs.
        keys: Vec<EcdsaKeyPair>,
        /// Per-user certificates issued by the CA.
        certs: Vec<Certificate>,
        /// The CA's verification key.
        ca: CaPublic,
        /// Member identities, ring order (certificate subjects).
        ids: Vec<UserId>,
    },
    /// DSA with certificates.
    Dsa {
        /// Scheme instance (Schnorr group).
        scheme: Dsa,
        /// Per-user key pairs.
        keys: Vec<DsaKeyPair>,
        /// Per-user certificates issued by the CA.
        certs: Vec<Certificate>,
        /// The CA's verification key.
        ca: CaPublic,
        /// Member identities, ring order (certificate subjects).
        ids: Vec<UserId>,
    },
}

impl AuthKit {
    /// Which Table 1 column this kit instantiates.
    pub fn protocol(&self) -> InitialProtocol {
        match self {
            AuthKit::Sok { .. } => InitialProtocol::BdSok,
            AuthKit::Ecdsa { .. } => InitialProtocol::BdEcdsa,
            AuthKit::Dsa { .. } => InitialProtocol::BdDsa,
        }
    }

    /// Group size this kit was provisioned for.
    pub fn n(&self) -> usize {
        self.ids().len()
    }

    /// The member identities this kit was provisioned for, ring order.
    pub fn ids(&self) -> &[UserId] {
        match self {
            AuthKit::Sok { ids, .. } => ids,
            AuthKit::Ecdsa { ids, .. } => ids,
            AuthKit::Dsa { ids, .. } => ids,
        }
    }

    /// Canonical ring `U_0 … U_{n−1}`.
    fn canonical_ids(n: usize) -> Vec<UserId> {
        (0..n as u32).map(UserId).collect()
    }

    /// Provisions a SOK deployment: PKG setup + per-user extraction.
    pub fn setup_sok<R: Rng + ?Sized>(rng: &mut R, group: egka_ec::PairingGroup, n: usize) -> Self {
        Self::setup_sok_for(rng, group, &Self::canonical_ids(n))
    }

    /// [`AuthKit::setup_sok`] for an explicit identity ring.
    pub fn setup_sok_for<R: Rng + ?Sized>(
        rng: &mut R,
        group: egka_ec::PairingGroup,
        ids: &[UserId],
    ) -> Self {
        let pkg = SokPkg::setup(rng, group);
        let keys = ids.iter().map(|u| pkg.extract(&u.to_bytes())).collect();
        AuthKit::Sok {
            params: pkg.params,
            keys,
            ids: ids.to_vec(),
        }
    }

    /// Provisions an ECDSA deployment: CA + per-user keys + certificates.
    pub fn setup_ecdsa<R: Rng + ?Sized>(rng: &mut R, scheme: Ecdsa, n: usize) -> Self {
        Self::setup_ecdsa_for(rng, scheme, &Self::canonical_ids(n))
    }

    /// [`AuthKit::setup_ecdsa`] for an explicit identity ring.
    pub fn setup_ecdsa_for<R: Rng + ?Sized>(rng: &mut R, scheme: Ecdsa, ids: &[UserId]) -> Self {
        let mut ca = CertificateAuthority::new_ecdsa(rng, b"egka-ca", scheme.clone());
        let keys: Vec<EcdsaKeyPair> = ids.iter().map(|_| scheme.keygen(rng)).collect();
        let certs = keys
            .iter()
            .zip(ids)
            .map(|(k, u)| ca.issue(rng, &u.to_bytes(), SubjectKey::Ecdsa(k.q.clone())))
            .collect();
        AuthKit::Ecdsa {
            ca: ca.public(),
            scheme,
            keys,
            certs,
            ids: ids.to_vec(),
        }
    }

    /// Provisions a DSA deployment: CA + per-user keys + certificates.
    pub fn setup_dsa<R: Rng + ?Sized>(rng: &mut R, scheme: Dsa, n: usize) -> Self {
        Self::setup_dsa_for(rng, scheme, &Self::canonical_ids(n))
    }

    /// [`AuthKit::setup_dsa`] for an explicit identity ring.
    pub fn setup_dsa_for<R: Rng + ?Sized>(rng: &mut R, scheme: Dsa, ids: &[UserId]) -> Self {
        let mut ca = CertificateAuthority::new_dsa(rng, b"egka-ca", scheme.clone());
        let keys: Vec<DsaKeyPair> = ids.iter().map(|_| scheme.keygen(rng)).collect();
        let certs = keys
            .iter()
            .zip(ids)
            .map(|(k, u)| ca.issue(rng, &u.to_bytes(), SubjectKey::Dsa(k.y.clone())))
            .collect();
        AuthKit::Dsa {
            ca: ca.public(),
            scheme,
            keys,
            certs,
            ids: ids.to_vec(),
        }
    }
}

/// One node's signing/verifying half, extracted from the kit.
// Variant sizes differ by scheme; nodes hold exactly one for a whole run.
#[allow(clippy::large_enum_variant)]
enum NodeAuth {
    Sok {
        params: SokParams,
        key: SokSecretKey,
    },
    Ecdsa {
        scheme: Ecdsa,
        key: EcdsaKeyPair,
        cert: Certificate,
        ca: CaPublic,
    },
    Dsa {
        scheme: Dsa,
        key: DsaKeyPair,
        cert: Certificate,
        ca: CaPublic,
    },
}

struct NodeState {
    idx: usize,
    id: UserId,
    /// Member identities in ring order (positions are ring indices; wire
    /// messages carry identities, which are looked up here).
    ring: Arc<Vec<UserId>>,
    auth: NodeAuth,
    bd_group: Arc<SchnorrGroup>,
    meter: Meter,
    rng: ChaChaRng,
    store: CertStore,
    share: Option<bd::Share>,
    zs: Vec<Ubig>,
    xs: Vec<Ubig>,
    sigs: Vec<Vec<u8>>,
    certs: Vec<Option<Certificate>>,
    /// Identities whose `Q_ID` MapToPoint has been charged (SOK).
    mapped_ids: Vec<bool>,
    derived: Option<Ubig>,
}

impl Metered for NodeState {
    fn meter(&self) -> &Meter {
        &self.meter
    }
}

/// The signed Round-2 message `U_i ‖ z_i ‖ X_i ‖ ∏ z_j`.
fn signed_message(id: UserId, z: &Ubig, x: &Ubig, z_prod: &Ubig) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_id(id).put_ubig(z).put_ubig(x).put_ubig(z_prod);
    w.finish().to_vec()
}

fn node_machine(state: NodeState, n: usize, proto: InitialProtocol) -> Engine<NodeState> {
    let phases = two_round_script(
        state.idx,
        kind::ROUND1,
        kind::ROUND2,
        n,
        // Round 1: broadcast U_i ‖ z_i (‖ cert_i).
        move |s: &mut NodeState| {
            let share = bd::round1_share(&mut s.rng, &s.bd_group);
            s.meter.record(CompOp::ModExp);
            let mut w = Writer::new();
            w.put_id(s.id).put_ubig(&share.z);
            match &s.auth {
                NodeAuth::Sok { .. } => {
                    w.put_bytes(&[]);
                }
                NodeAuth::Ecdsa { cert, .. } | NodeAuth::Dsa { cert, .. } => {
                    w.put_bytes(&cert.encode());
                }
            }
            s.zs[s.idx] = share.z.clone();
            s.share = Some(share);
            Outgoing {
                to: Dest::Broadcast,
                kind: kind::ROUND1,
                payload: w.finish(),
                nominal_bits: proto.round1_bits(),
            }
        },
        // Absorb round 1: store shares, verify newly seen certificates
        // (cached per CertStore), then compute X_i and sign m_i.
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("round-1 id");
                let z = r.get_ubig().expect("round-1 z");
                let cert_bytes = r.get_bytes().expect("round-1 cert field");
                r.expect_end().expect("no trailing bytes");
                let j = ring_position(&s.ring, id, "round-1");
                s.zs[j] = z;
                if !cert_bytes.is_empty() {
                    s.certs[j] = Some(Certificate::decode(cert_bytes).expect("valid cert bytes"));
                }
            }
            if let NodeAuth::Ecdsa { ca, .. } | NodeAuth::Dsa { ca, .. } = &s.auth {
                let scheme = match &s.auth {
                    NodeAuth::Ecdsa { .. } => Scheme::Ecdsa,
                    _ => Scheme::Dsa,
                };
                for j in 0..n {
                    if j == s.idx {
                        continue;
                    }
                    let cert = s.certs[j].as_ref().expect("cert schemes ship certs");
                    match s.store.check(cert, &s.ring[j].to_bytes(), ca) {
                        CertCheck::NewlyVerified => s.meter.record(CompOp::CertVerify(scheme)),
                        CertCheck::AlreadyTrusted => {}
                        CertCheck::Rejected => panic!("honest-run certificate rejected"),
                    }
                }
            }
            let share = s.share.as_ref().expect("round 1 done");
            let x = bd::round2_x(
                &s.bd_group,
                &share.r,
                &s.zs[(s.idx + n - 1) % n],
                &s.zs[(s.idx + 1) % n],
            );
            s.meter.record(CompOp::ModExp);
            s.meter.record(CompOp::ModInv);
            let z_prod =
                s.zs.iter()
                    .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &s.bd_group.p));
            let msg = signed_message(s.id, &share.z, &x, &z_prod);
            let sig_bytes = match &s.auth {
                NodeAuth::Sok { params, key } => {
                    let sig = params.sign(&mut s.rng, key, &msg);
                    s.meter.record(CompOp::SignGen(Scheme::Sok));
                    let curve = params.group().curve();
                    let mut w = Writer::new();
                    w.put_bytes(&curve.compress(&sig.s1))
                        .put_bytes(&curve.compress(&sig.s2));
                    w.finish().to_vec()
                }
                NodeAuth::Ecdsa { scheme, key, .. } => {
                    let sig = scheme.sign(&mut s.rng, key, &msg);
                    s.meter.record(CompOp::SignGen(Scheme::Ecdsa));
                    let mut w = Writer::new();
                    w.put_ubig(&sig.r).put_ubig(&sig.s);
                    w.finish().to_vec()
                }
                NodeAuth::Dsa { scheme, key, .. } => {
                    let sig = scheme.sign(&mut s.rng, key, &msg);
                    s.meter.record(CompOp::SignGen(Scheme::Dsa));
                    let mut w = Writer::new();
                    w.put_ubig(&sig.r).put_ubig(&sig.s);
                    w.finish().to_vec()
                }
            };
            s.xs[s.idx] = x;
            s.sigs[s.idx] = sig_bytes;
        },
        // Round-2 broadcast U_i ‖ X_i ‖ σ_i (controller last, as in the
        // proposed protocol).
        move |s: &mut NodeState| {
            let mut w = Writer::new();
            w.put_id(s.id)
                .put_ubig(&s.xs[s.idx])
                .put_bytes(&s.sigs[s.idx]);
            Outgoing {
                to: Dest::Broadcast,
                kind: kind::ROUND2,
                payload: w.finish(),
                nominal_bits: proto.round2_bits(),
            }
        },
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("round-2 id");
                let x = r.get_ubig().expect("round-2 X");
                let sig = r.get_bytes().expect("round-2 signature");
                r.expect_end().expect("no trailing bytes");
                let j = ring_position(&s.ring, id, "round-2");
                s.xs[j] = x;
                s.sigs[j] = sig.to_vec();
            }
        },
        // Verify all n−1 signatures (ECDSA/DSA as one epoch batch), then
        // derive the key.
        move |s: &mut NodeState| {
            let z_prod =
                s.zs.iter()
                    .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &s.bd_group.p));
            verify_round2_sigs(s, &z_prod);
            let share = s.share.as_ref().expect("round 1 done");
            let ring: Vec<Ubig> = (0..n).map(|k| s.xs[(s.idx + k) % n].clone()).collect();
            let key = bd::compute_key(&s.bd_group, &share.r, &s.zs[(s.idx + n - 1) % n], &ring);
            s.meter.record(CompOp::ModExp);
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        },
    );
    Engine::new(state, phases)
}

/// One in-flight authenticated-BD run (pumpable).
pub struct AuthBdRun {
    exec: Execution<NodeState>,
}

impl AuthBdRun {
    /// Prepares a run over `bd_group` with the credentials in `kit`;
    /// `already_trusts(i, j)` pre-seeds certificate trust (see
    /// [`run_with_trust`]).
    ///
    /// # Panics
    /// Panics if the kit holds fewer than two members.
    pub fn new(
        bd_group: &SchnorrGroup,
        kit: &AuthKit,
        seed: u64,
        faults: &Faults,
        already_trusts: impl Fn(usize, usize) -> bool,
    ) -> Self {
        let n = kit.n();
        assert!(n >= 2, "a group needs at least two members");
        let proto = kit.protocol();
        let group = Arc::new(bd_group.clone());
        let ids: Vec<UserId> = kit.ids().to_vec();
        let ring = Arc::new(ids.clone());
        let exec = Execution::new(&ids, faults, |i, _| {
            let mut state = NodeState {
                idx: i,
                id: ids[i],
                ring: Arc::clone(&ring),
                auth: match kit {
                    AuthKit::Sok { params, keys, .. } => NodeAuth::Sok {
                        params: params.clone(),
                        key: keys[i].clone(),
                    },
                    AuthKit::Ecdsa {
                        scheme,
                        keys,
                        certs,
                        ca,
                        ..
                    } => NodeAuth::Ecdsa {
                        scheme: scheme.clone(),
                        key: keys[i].clone(),
                        cert: certs[i].clone(),
                        ca: ca.clone(),
                    },
                    AuthKit::Dsa {
                        scheme,
                        keys,
                        certs,
                        ca,
                        ..
                    } => NodeAuth::Dsa {
                        scheme: scheme.clone(),
                        key: keys[i].clone(),
                        cert: certs[i].clone(),
                        ca: ca.clone(),
                    },
                },
                bd_group: Arc::clone(&group),
                meter: Meter::new(),
                rng: ChaChaRng::seed_from_u64(
                    seed ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
                ),
                store: CertStore::new(),
                share: None,
                zs: vec![Ubig::zero(); n],
                xs: vec![Ubig::zero(); n],
                sigs: vec![Vec::new(); n],
                certs: vec![None; n],
                mapped_ids: vec![false; n],
                derived: None,
            };
            // Pre-seed certificate trust (prior-session verifications).
            if let AuthKit::Ecdsa { certs, ca, .. } | AuthKit::Dsa { certs, ca, .. } = kit {
                for (j, cert) in certs.iter().enumerate() {
                    if i != j && already_trusts(i, j) {
                        let outcome = state.store.check(cert, &ids[j].to_bytes(), ca);
                        assert_eq!(outcome, CertCheck::NewlyVerified);
                    }
                }
            }
            node_machine(state, n, proto)
        });
        AuthBdRun { exec }
    }

    /// One non-blocking scheduling sweep.
    pub fn pump(&mut self) -> Pump {
        self.exec.pump()
    }

    /// True iff every member derived the key.
    pub fn is_done(&self) -> bool {
        self.exec.is_done()
    }

    /// Terminal failure, if one surfaced (deadline expiry).
    pub fn failure(&self) -> Option<egka_net::NetError> {
        self.exec.failure()
    }

    /// Ops + traffic spent so far — the cost a scheduler charges for an
    /// aborted (stalled) attempt.
    pub fn partial_counts(&self) -> egka_energy::OpCounts {
        self.exec.partial_counts()
    }

    /// Virtual milliseconds this run has spent on its radio clock (`None`
    /// off-radio).
    pub fn virtual_elapsed_ms(&self) -> Option<f64> {
        self.exec.virtual_now_ms()
    }

    /// Like [`AuthBdRun::finish`], but also assembles a
    /// [`crate::GroupSession`] over `params` so the run can seed service
    /// state: each member carries its BD share; `gq_keys` (ring order)
    /// fill the ID-key slots the session schema requires. The BD group of
    /// `params` must be the one the run executed over.
    ///
    /// The authenticated-BD baselines have no §7 dynamics — a membership
    /// change re-runs the whole protocol — so the GQ commitment slots are
    /// left zeroed; nothing ever reads them for these suites.
    ///
    /// # Panics
    /// Panics if the run has not finished, keys diverged, or `gq_keys`
    /// does not match the ring.
    pub fn finish_session(
        self,
        params: &crate::params::Params,
        gq_keys: &[egka_sig::GqSecretKey],
    ) -> (RunReport, crate::GroupSession) {
        assert!(self.exec.is_done(), "finish() before the run completed");
        assert_eq!(gq_keys.len(), self.exec.n(), "one GQ key per member");
        let members: Vec<crate::MemberState> = (0..self.exec.n())
            .map(|i| {
                let state = self.exec.machine(i).state();
                let share = state.share.as_ref().expect("round 1 done");
                crate::MemberState {
                    id: state.id,
                    gq_key: gq_keys[i].clone(),
                    r: share.r.clone(),
                    z: share.z.clone(),
                    tau: Ubig::zero(),
                    t: Ubig::zero(),
                }
            })
            .collect();
        let report = self.finish();
        let session = crate::GroupSession {
            params: params.clone(),
            key: report.nodes[0].key.clone(),
            members,
        };
        (report, session)
    }

    /// Assembles the per-node reports.
    ///
    /// # Panics
    /// Panics if the run has not finished or keys diverged.
    pub fn finish(self) -> RunReport {
        assert!(self.exec.is_done(), "finish() before the run completed");
        let nodes: Vec<NodeReport> = (0..self.exec.n())
            .map(|i| {
                let state = self.exec.machine(i).state();
                NodeReport {
                    id: state.id,
                    key: state.derived.clone().expect("derived"),
                    counts: self.exec.node_counts(i),
                }
            })
            .collect();
        let report = RunReport { nodes, attempts: 1 };
        assert!(report.keys_agree(), "authenticated BD keys must agree");
        report
    }

    /// Drives to completion with parallel per-node sweeps.
    pub(crate) fn run_to_completion(&mut self) {
        loop {
            match self.exec.pump_par() {
                Pump::Done => return,
                Pump::Progressed => {}
                other => panic!("authenticated BD cannot {other:?} on a reliable medium"),
            }
        }
    }
}

/// Runs an authenticated-BD exchange over `bd_group` with the credentials
/// in `kit`. Returns per-node reports (keys + instrumented counts).
///
/// # Panics
/// Panics if any certificate or signature fails to verify (these baselines
/// model honest groups; fault injection lives in the proposed protocol).
pub fn run(bd_group: &SchnorrGroup, kit: &AuthKit, seed: u64) -> RunReport {
    run_with_trust(bd_group, kit, seed, |_, _| false)
}

/// [`run`] with pre-seeded certificate trust: `already_trusts(i, j)` says
/// whether node `i` verified node `j`'s certificate in an earlier session.
/// Pre-trusted certificates skip the `CertVerify` charge — the accounting
/// convention behind Table 5's BD re-execution rows (returning members pay
/// only for *new* certificates; a Join's newcomer pays for all `n`).
pub fn run_with_trust(
    bd_group: &SchnorrGroup,
    kit: &AuthKit,
    seed: u64,
    already_trusts: impl Fn(usize, usize) -> bool,
) -> RunReport {
    let mut auth = AuthBdRun::new(bd_group, kit, seed, &Faults::none(), already_trusts);
    auth.run_to_completion();
    auth.finish()
}

/// Verifies all `n − 1` Round-2 signatures for one node.
///
/// SOK verifies message by message ([`verify_one`] — its pairing reuse
/// lives in the scheme's fixed-argument Miller precomputation); ECDSA and
/// DSA hand the whole set to `egka_sig::batch` as one epoch batch. The
/// meter records are **identical** to the one-by-one path — one
/// `SignVerify` per peer message, charged up front — because the paper
/// prices the protocol's verification count, not the implementation
/// shortcut. A batch rejection names the lowest-index culprit (the batch
/// layer falls back to individual verification for attribution).
///
/// # Panics
/// Panics if any signature (or its certificate key) fails — these
/// baselines model honest runs; fault injection happens at the transport.
fn verify_round2_sigs(node: &mut NodeState, z_prod: &Ubig) {
    let n = node.ring.len();
    let peers: Vec<usize> = (0..n).filter(|&j| j != node.idx).collect();
    let msgs: Vec<Vec<u8>> = peers
        .iter()
        .map(|&j| signed_message(node.ring[j], &node.zs[j], &node.xs[j], z_prod))
        .collect();
    if matches!(node.auth, NodeAuth::Sok { .. }) {
        for (k, &j) in peers.iter().enumerate() {
            let ok = verify_one(node, j, &msgs[k]);
            assert!(ok, "honest-run signature from U{j} rejected");
        }
        return;
    }
    match &node.auth {
        NodeAuth::Sok { .. } => unreachable!("handled above"),
        NodeAuth::Ecdsa { scheme, .. } => {
            let mut qs = Vec::with_capacity(peers.len());
            let mut sigs = Vec::with_capacity(peers.len());
            for &j in &peers {
                node.meter.record(CompOp::SignVerify(Scheme::Ecdsa));
                let Some(SubjectKey::Ecdsa(q)) = node.certs[j].as_ref().map(|c| c.key.clone())
                else {
                    panic!("honest-run signature from U{j} rejected");
                };
                let mut r = Reader::new(&node.sigs[j]);
                let (Ok(sr), Ok(ss)) = (r.get_ubig(), r.get_ubig()) else {
                    panic!("honest-run signature from U{j} rejected");
                };
                qs.push(q);
                sigs.push(EcdsaSignature { r: sr, s: ss });
            }
            let items: Vec<EcdsaBatchItem<'_>> = peers
                .iter()
                .enumerate()
                .map(|(k, _)| EcdsaBatchItem {
                    q: &qs[k],
                    msg: &msgs[k],
                    sig: &sigs[k],
                })
                .collect();
            if let Err(k) = ecdsa_batch_verify(scheme, &items) {
                panic!("honest-run signature from U{} rejected", peers[k]);
            }
        }
        NodeAuth::Dsa { scheme, .. } => {
            let mut ys = Vec::with_capacity(peers.len());
            let mut sigs = Vec::with_capacity(peers.len());
            for &j in &peers {
                node.meter.record(CompOp::SignVerify(Scheme::Dsa));
                let Some(SubjectKey::Dsa(y)) = node.certs[j].as_ref().map(|c| c.key.clone()) else {
                    panic!("honest-run signature from U{j} rejected");
                };
                let mut r = Reader::new(&node.sigs[j]);
                let (Ok(sr), Ok(ss)) = (r.get_ubig(), r.get_ubig()) else {
                    panic!("honest-run signature from U{j} rejected");
                };
                ys.push(y);
                sigs.push(DsaSignature { r: sr, s: ss });
            }
            let items: Vec<DsaBatchItem<'_>> = peers
                .iter()
                .enumerate()
                .map(|(k, _)| DsaBatchItem {
                    y: &ys[k],
                    msg: &msgs[k],
                    sig: &sigs[k],
                })
                .collect();
            if let Err(k) = dsa_batch_verify(scheme, &items) {
                panic!("honest-run signature from U{} rejected", peers[k]);
            }
        }
    }
}

/// Verifies sender `j`'s signature, recording the ops the paper prices:
/// one `SignVerify` per message, plus (SOK) one `MapToPoint` per *new*
/// identity. (The SOK verifier really performs a second MapToPoint for the
/// message hash; the paper's Table 1 only counts the identity ones, so the
/// message MapToPoint is recorded as a free `Hash` — see `EXPERIMENTS.md`.)
fn verify_one(node: &mut NodeState, j: usize, msg: &[u8]) -> bool {
    let jid = node.ring[j];
    match &node.auth {
        NodeAuth::Sok { params, .. } => {
            if !node.mapped_ids[j] {
                node.meter.record(CompOp::MapToPoint);
                node.mapped_ids[j] = true;
            }
            node.meter.record(CompOp::Hash); // the Q_M MapToPoint, unpriced
            node.meter.record(CompOp::SignVerify(Scheme::Sok));
            let mut r = Reader::new(&node.sigs[j]);
            let (Ok(s1), Ok(s2)) = (r.get_bytes(), r.get_bytes()) else {
                return false;
            };
            let curve = params.group().curve();
            let (Some(s1), Some(s2)) = (curve.decompress(s1), curve.decompress(s2)) else {
                return false;
            };
            params.verify(&jid.to_bytes(), msg, &SokSignature { s1, s2 })
        }
        NodeAuth::Ecdsa { scheme, .. } => {
            node.meter.record(CompOp::SignVerify(Scheme::Ecdsa));
            let Some(SubjectKey::Ecdsa(q)) = node.certs[j].as_ref().map(|c| c.key.clone()) else {
                return false;
            };
            let mut r = Reader::new(&node.sigs[j]);
            let (Ok(sr), Ok(ss)) = (r.get_ubig(), r.get_ubig()) else {
                return false;
            };
            scheme.verify(&q, msg, &EcdsaSignature { r: sr, s: ss })
        }
        NodeAuth::Dsa { scheme, .. } => {
            node.meter.record(CompOp::SignVerify(Scheme::Dsa));
            let Some(SubjectKey::Dsa(y)) = node.certs[j].as_ref().map(|c| c.key.clone()) else {
                return false;
            };
            let mut r = Reader::new(&node.sigs[j]);
            let (Ok(sr), Ok(ss)) = (r.get_ubig(), r.get_ubig()) else {
                return false;
            };
            scheme.verify(&y, msg, &DsaSignature { r: sr, s: ss })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_energy::OpCounts;

    fn bd_group() -> SchnorrGroup {
        let mut rng = ChaChaRng::seed_from_u64(0x41424400);
        egka_bigint::gen_schnorr_group(&mut rng, 192, 64)
    }

    fn assert_counts(report: &RunReport, expect: &OpCounts) {
        for node in &report.nodes {
            for i in 0..egka_energy::NUM_OPS {
                let op = CompOp::from_index(i).unwrap();
                if matches!(op, CompOp::Hash | CompOp::ModInv | CompOp::ModMul) {
                    continue; // unpriced bookkeeping ops
                }
                assert_eq!(
                    node.counts.comp[i], expect.comp[i],
                    "{}: op {op:?}",
                    node.id
                );
            }
            assert_eq!(node.counts.msgs_tx, expect.msgs_tx, "{}", node.id);
            assert_eq!(node.counts.msgs_rx, expect.msgs_rx, "{}", node.id);
            assert_eq!(node.counts.tx_bits, expect.tx_bits, "{}", node.id);
            assert_eq!(node.counts.rx_bits, expect.rx_bits, "{}", node.id);
        }
    }

    #[test]
    fn ecdsa_baseline_agrees_and_matches_closed_form() {
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let kit = AuthKit::setup_ecdsa(&mut rng, Ecdsa::new(egka_ec::secp160r1()), 5);
        let report = run(&g, &kit, 2);
        assert!(report.keys_agree());
        assert_counts(&report, &InitialProtocol::BdEcdsa.per_user_counts(5));
    }

    #[test]
    fn dsa_baseline_agrees_and_matches_closed_form() {
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(2);
        let dsa = Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 256, 96));
        let kit = AuthKit::setup_dsa(&mut rng, dsa, 4);
        let report = run(&g, &kit, 3);
        assert!(report.keys_agree());
        assert_counts(&report, &InitialProtocol::BdDsa.per_user_counts(4));
    }

    #[test]
    fn sok_baseline_agrees_and_matches_closed_form() {
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let pairing = egka_ec::gen_pairing_group(&mut rng, 96, 64);
        let kit = AuthKit::setup_sok(&mut rng, pairing, 4);
        let report = run(&g, &kit, 4);
        assert!(report.keys_agree());
        assert_counts(&report, &InitialProtocol::BdSok.per_user_counts(4));
    }

    #[test]
    fn all_baselines_derive_identical_bd_key_distribution() {
        // Same BD group + same seed ⇒ the BD layer derives keys
        // independently of the authentication wrapper.
        let g = bd_group();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let kit_e = AuthKit::setup_ecdsa(&mut rng, Ecdsa::new(egka_ec::secp160r1()), 3);
        let r1 = run(&g, &kit_e, 77);
        let r2 = run(&g, &kit_e, 77);
        assert_eq!(r1.key(), r2.key(), "deterministic given the seed");
        let r3 = run(&g, &kit_e, 78);
        assert_ne!(r1.key(), r3.key());
    }
}
