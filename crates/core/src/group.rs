//! Group session state carried between the initial GKA and the dynamic
//! membership protocols.
//!
//! After a successful run of the proposed protocol every member holds: its
//! ring position, its BD exponent `r_i`, everyone's public share `z_j`, its
//! last GQ commitment `(τ_i, t_i)` and the group key `K`. The dynamic
//! protocols (paper §7) consume and update exactly this state — e.g. the
//! Leave protocol's even-indexed members *reuse* their stored `τ_i` against
//! a fresh challenge, precisely as the paper specifies (see the security
//! note in `DESIGN.md` §security-notes).
//!
//! [`GroupSession`] is the omniscient test-harness view (all members); each
//! member's *own* knowledge is the corresponding [`MemberState`] plus the
//! public `z` shares, which protocol code accesses through
//! [`GroupSession::z_of`] to keep the "who knows what" discipline visible.

use egka_bigint::Ubig;
use egka_sig::GqSecretKey;

use crate::ident::UserId;
use crate::params::Params;
use crate::wire::{DecodeError, Reader, Writer};

/// One member's private protocol state.
#[derive(Clone, Debug)]
pub struct MemberState {
    /// Identity.
    pub id: UserId,
    /// Extracted GQ ID key.
    pub gq_key: GqSecretKey,
    /// Current BD exponent `r_i`.
    pub r: Ubig,
    /// Current public share `z_i = g^{r_i}` (known to the whole group).
    pub z: Ubig,
    /// Last GQ commitment randomness `τ_i`.
    pub tau: Ubig,
    /// Last GQ commitment `t_i = τ_i^e` (known to the whole group).
    pub t: Ubig,
}

/// A group that has agreed on a key.
#[derive(Clone, Debug)]
pub struct GroupSession {
    /// Shared protocol parameters.
    pub params: Params,
    /// Members in ring order (`members[0]` is the controller `U_1`).
    pub members: Vec<MemberState>,
    /// The current group key `K`.
    pub key: Ubig,
}

impl GroupSession {
    /// Group size `n`.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// The public share of the member at ring position `i`.
    pub fn z_of(&self, i: usize) -> &Ubig {
        &self.members[i].z
    }

    /// Ring predecessor of position `i`.
    pub fn pred(&self, i: usize) -> usize {
        (i + self.n() - 1) % self.n()
    }

    /// Ring successor of position `i`.
    pub fn succ(&self, i: usize) -> usize {
        (i + 1) % self.n()
    }

    /// Serializes the key for use as symmetric key material (`E_K(·)`).
    pub fn key_material(&self) -> Vec<u8> {
        self.key.to_bytes_be()
    }

    /// Ring position of the member with identity `id`, if present.
    ///
    /// Batched rekeying (the `egka-service` epoch coordinator) addresses
    /// members by identity while the §7 protocols address them by ring
    /// position; this is the bridge.
    pub fn position_of(&self, id: UserId) -> Option<usize> {
        self.members.iter().position(|m| m.id == id)
    }

    /// True iff `id` is currently a member.
    pub fn contains(&self, id: UserId) -> bool {
        self.position_of(id).is_some()
    }

    /// Member identities in ring order.
    pub fn member_ids(&self) -> Vec<UserId> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// Serializes the full per-member session state (identities, BD
    /// exponents, public shares, GQ commitments and extracted ID keys)
    /// plus the group key — everything the §7 dynamics consume — into `w`.
    ///
    /// The shared [`Params`] are deliberately *not* written: they belong
    /// to the PKG the service runs on, and a store that duplicated them
    /// per group could silently resurrect a session under the wrong
    /// algebra. [`GroupSession::decode_state`] takes them from the caller.
    pub fn encode_state(&self, w: &mut Writer) {
        w.put_u32(self.members.len() as u32);
        for m in &self.members {
            w.put_id(m.id)
                .put_bytes(&m.gq_key.id)
                .put_ubig(&m.gq_key.s_id)
                .put_ubig(&m.r)
                .put_ubig(&m.z)
                .put_ubig(&m.tau)
                .put_ubig(&m.t);
        }
        w.put_ubig(&self.key);
    }

    /// Reconstructs a session written by [`GroupSession::encode_state`]
    /// under the caller's shared parameters.
    pub fn decode_state(r: &mut Reader<'_>, params: &Params) -> Result<GroupSession, DecodeError> {
        let n = r.get_u32()? as usize;
        // A damaged count fails on the first truncated member read; only
        // the pre-allocation needs guarding.
        let mut members = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = r.get_id()?;
            let gq_id = r.get_bytes()?.to_vec();
            let s_id = r.get_ubig()?;
            members.push(MemberState {
                id,
                gq_key: GqSecretKey { id: gq_id, s_id },
                r: r.get_ubig()?,
                z: r.get_ubig()?,
                tau: r.get_ubig()?,
                t: r.get_ubig()?,
            });
        }
        let key = r.get_ubig()?;
        Ok(GroupSession {
            params: params.clone(),
            members,
            key,
        })
    }

    /// Checks the defining invariant: `K = g^{Σ r_i r_{i+1}}` and
    /// `z_i = g^{r_i}` for every member (test/debug helper; a real node
    /// cannot evaluate this, it requires all secrets).
    pub fn invariant_holds(&self) -> bool {
        use egka_bigint::{mod_mul, mod_pow};
        let g = &self.params.bd;
        for m in &self.members {
            if mod_pow(&g.g, &m.r, &g.p) != m.z {
                return false;
            }
        }
        let n = self.n();
        let mut exp = Ubig::zero();
        for i in 0..n {
            let prod = mod_mul(&self.members[i].r, &self.members[(i + 1) % n].r, &g.q);
            exp = egka_bigint::mod_add(&exp, &prod, &g.q);
        }
        mod_pow(&g.g, &exp, &g.p) == self.key
    }
}

#[cfg(test)]
mod tests {
    use crate::params::{Pkg, SecurityProfile};
    use crate::proposed::{self, RunConfig};
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    #[test]
    fn session_from_run_satisfies_invariant() {
        let mut rng = ChaChaRng::seed_from_u64(0x475253);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys = pkg.extract_group(4);
        let (_, session) = proposed::run(pkg.params(), &keys, 5, RunConfig::default());
        assert!(session.invariant_holds());
        assert_eq!(session.n(), 4);
        assert_eq!(session.pred(0), 3);
        assert_eq!(session.succ(3), 0);
    }

    #[test]
    fn state_codec_roundtrips_bit_for_bit() {
        use crate::wire::{Reader, Writer};
        let mut rng = ChaChaRng::seed_from_u64(0x57a7e);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys = pkg.extract_group(5);
        let (_, session) = proposed::run(pkg.params(), &keys, 9, RunConfig::default());

        let mut w = Writer::new();
        session.encode_state(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let back = crate::GroupSession::decode_state(&mut r, pkg.params()).unwrap();
        r.expect_end().unwrap();

        assert_eq!(back.key, session.key);
        assert_eq!(back.n(), session.n());
        for (a, b) in back.members.iter().zip(&session.members) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.gq_key, b.gq_key);
            assert_eq!(a.r, b.r);
            assert_eq!(a.z, b.z);
            assert_eq!(a.tau, b.tau);
            assert_eq!(a.t, b.t);
        }
        assert!(back.invariant_holds());

        // Truncation is a typed decode error, never a panic.
        for cut in [0usize, 1, 7, buf.len() / 2, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(crate::GroupSession::decode_state(&mut r, pkg.params()).is_err());
        }
    }

    #[test]
    fn tampered_session_fails_invariant() {
        let mut rng = ChaChaRng::seed_from_u64(0x475254);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys = pkg.extract_group(3);
        let (_, mut session) = proposed::run(pkg.params(), &keys, 6, RunConfig::default());
        session.key =
            egka_bigint::mod_mul(&session.key, &session.params.bd.g, &session.params.bd.p);
        assert!(!session.invariant_holds());
    }
}
