//! The Burmester–Desmedt arithmetic core (Eurocrypt '94), shared by every
//! protocol variant in this crate.
//!
//! For a ring of users `U_1 … U_n` with secrets `r_i` and shares
//! `z_i = g^{r_i}`:
//!
//! ```text
//! Round 1:  broadcast z_i = g^{r_i}
//! Round 2:  broadcast X_i = (z_{i+1} / z_{i-1})^{r_i}
//! Key:      K = g^{r_1 r_2 + r_2 r_3 + … + r_n r_1}
//! ```
//!
//! Each user computes `K` with **one** exponentiation via the telescoping
//! chain `A_0 = z_{i-1}^{r_i}`, `A_{j+1} = A_j · X_{i+j}` (then
//! `K = ∏ A_j`), which together with `z_i` and `X_i` gives the paper's
//! "3 exponentiations per user" (Table 1). Lemma 1 (`∏ X_i ≡ 1 mod p`) is
//! the paper's integrity check on the Round-2 values.
//!
//! Functions here are pure algebra; operation metering happens at the
//! protocol layer (every function documents what the paper charges for it).

use egka_bigint::{mod_inverse, mod_mul, mod_pow, mod_pow_fixed, random_below, SchnorrGroup, Ubig};
use rand::Rng;

/// A user's Round-1 state: the secret exponent and the public share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Share {
    /// Secret `r_i ∈ Z_q^*`.
    pub r: Ubig,
    /// Public `z_i = g^{r_i} mod p`.
    pub z: Ubig,
}

/// Samples `r_i` and computes `z_i = g^{r_i}` (1 modular exponentiation).
pub fn round1_share<R: Rng + ?Sized>(rng: &mut R, group: &SchnorrGroup) -> Share {
    let r = loop {
        let r = random_below(rng, &group.q);
        if !r.is_zero() {
            break r;
        }
    };
    let z = mod_pow_fixed(&group.g, &r, &group.p);
    Share { r, z }
}

/// Computes `X_i = (z_next / z_prev)^{r_i}` (1 exponentiation + 1 modular
/// inversion, the latter negligible in the paper's cost model).
///
/// # Panics
/// Panics if `z_prev` is not invertible mod `p` (impossible for honest
/// shares, which lie in the order-`q` subgroup).
pub fn round2_x(group: &SchnorrGroup, r: &Ubig, z_prev: &Ubig, z_next: &Ubig) -> Ubig {
    let prev_inv = mod_inverse(z_prev, &group.p).expect("shares are units mod p");
    let base = mod_mul(z_next, &prev_inv, &group.p);
    mod_pow(&base, r, &group.p)
}

/// Lemma 1: `∏ X_i ≡ 1 (mod p)`. Used by the proposed protocol to detect a
/// corrupted Round-2 value before deriving the key (all-multiply, no
/// exponentiations).
pub fn lemma1_holds(group: &SchnorrGroup, xs: &[Ubig]) -> bool {
    let prod = xs
        .iter()
        .fold(Ubig::one(), |acc, x| mod_mul(&acc, x, &group.p));
    prod.is_one()
}

/// Derives the group key for the user at ring position 0 of `ring_xs`.
///
/// `ring_xs` must contain the `X` values in ring order **starting with this
/// user's own `X_i`**: `[X_i, X_{i+1}, …, X_{i+n-1}]` (indices mod `n`);
/// `z_prev` is the predecessor's share and `r` this user's secret.
///
/// Cost: 1 exponentiation + `2(n−1)` modular multiplications.
pub fn compute_key(group: &SchnorrGroup, r: &Ubig, z_prev: &Ubig, ring_xs: &[Ubig]) -> Ubig {
    // A_0 = z_{i-1}^{r_i} = g^{r_{i-1} r_i}
    let mut a = mod_pow(z_prev, r, &group.p);
    let mut key = a.clone();
    // A_{j+1} = A_j · X_{i+j} = g^{r_{i+j} r_{i+j+1}}
    for x in &ring_xs[..ring_xs.len() - 1] {
        a = mod_mul(&a, x, &group.p);
        key = mod_mul(&key, &a, &group.p);
    }
    key
}

/// Reference (slow) key computation straight from the definition
/// `K = ∏ g^{r_i r_{i+1}}`, for cross-checking in tests: `n`
/// exponentiations.
pub fn compute_key_reference(group: &SchnorrGroup, rs: &[Ubig]) -> Ubig {
    let n = rs.len();
    let mut key = Ubig::one();
    for i in 0..n {
        let prod = mod_mul(&rs[i], &rs[(i + 1) % n], &group.q);
        key = mod_mul(&key, &mod_pow(&group.g, &prod, &group.p), &group.p);
    }
    key
}

/// Runs a whole (unauthenticated) BD exchange in-process and returns every
/// user's derived key — the smallest possible harness, used by tests and by
/// the quickstart example.
pub fn run_plain<R: Rng + ?Sized>(rng: &mut R, group: &SchnorrGroup, n: usize) -> Vec<Ubig> {
    assert!(n >= 2);
    let shares: Vec<Share> = (0..n).map(|_| round1_share(rng, group)).collect();
    let xs: Vec<Ubig> = (0..n)
        .map(|i| {
            round2_x(
                group,
                &shares[i].r,
                &shares[(i + n - 1) % n].z,
                &shares[(i + 1) % n].z,
            )
        })
        .collect();
    debug_assert!(lemma1_holds(group, &xs));
    (0..n)
        .map(|i| {
            let ring: Vec<Ubig> = (0..n).map(|j| xs[(i + j) % n].clone()).collect();
            compute_key(group, &shares[i].r, &shares[(i + n - 1) % n].z, &ring)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    fn group() -> SchnorrGroup {
        let mut rng = ChaChaRng::seed_from_u64(0x4244);
        egka_bigint::gen_schnorr_group(&mut rng, 192, 64)
    }

    #[test]
    fn all_users_agree() {
        let g = group();
        let mut rng = ChaChaRng::seed_from_u64(1);
        for n in [2usize, 3, 4, 7, 10] {
            let keys = run_plain(&mut rng, &g, n);
            assert!(keys.windows(2).all(|w| w[0] == w[1]), "n = {n}");
        }
    }

    #[test]
    fn key_matches_reference_definition() {
        let g = group();
        let mut rng = ChaChaRng::seed_from_u64(2);
        let n = 5;
        let shares: Vec<Share> = (0..n).map(|_| round1_share(&mut rng, &g)).collect();
        let xs: Vec<Ubig> = (0..n)
            .map(|i| {
                round2_x(
                    &g,
                    &shares[i].r,
                    &shares[(i + n - 1) % n].z,
                    &shares[(i + 1) % n].z,
                )
            })
            .collect();
        let ring: Vec<Ubig> = (0..n).map(|j| xs[j % n].clone()).collect();
        let fast = compute_key(&g, &shares[0].r, &shares[n - 1].z, &ring);
        let rs: Vec<Ubig> = shares.iter().map(|s| s.r.clone()).collect();
        assert_eq!(fast, compute_key_reference(&g, &rs));
    }

    #[test]
    fn lemma1_accepts_honest_and_rejects_corrupt() {
        let g = group();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let n = 6;
        let shares: Vec<Share> = (0..n).map(|_| round1_share(&mut rng, &g)).collect();
        let mut xs: Vec<Ubig> = (0..n)
            .map(|i| {
                round2_x(
                    &g,
                    &shares[i].r,
                    &shares[(i + n - 1) % n].z,
                    &shares[(i + 1) % n].z,
                )
            })
            .collect();
        assert!(lemma1_holds(&g, &xs));
        xs[3] = mod_mul(&xs[3], &Ubig::from_u64(2), &g.p);
        assert!(!lemma1_holds(&g, &xs));
    }

    #[test]
    fn corrupt_x_breaks_agreement() {
        // Without Lemma 1's check, a corrupted X silently forks the key.
        let g = group();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let n = 4;
        let shares: Vec<Share> = (0..n).map(|_| round1_share(&mut rng, &g)).collect();
        let mut xs: Vec<Ubig> = (0..n)
            .map(|i| {
                round2_x(
                    &g,
                    &shares[i].r,
                    &shares[(i + n - 1) % n].z,
                    &shares[(i + 1) % n].z,
                )
            })
            .collect();
        xs[2] = mod_mul(&xs[2], &g.g, &g.p);
        let keys: Vec<Ubig> = (0..n)
            .map(|i| {
                let ring: Vec<Ubig> = (0..n).map(|j| xs[(i + j) % n].clone()).collect();
                compute_key(&g, &shares[i].r, &shares[(i + n - 1) % n].z, &ring)
            })
            .collect();
        assert!(keys.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn shares_are_subgroup_elements() {
        let g = group();
        let mut rng = ChaChaRng::seed_from_u64(5);
        let s = round1_share(&mut rng, &g);
        assert!(mod_pow(&s.z, &g.q, &g.p).is_one());
        assert!(!s.r.is_zero() && s.r < g.q);
    }

    #[test]
    fn two_party_key_is_squared_dh() {
        // n = 2: K = g^{r1 r2 + r2 r1} = g^{2 r1 r2}.
        let g = group();
        let mut rng = ChaChaRng::seed_from_u64(6);
        let keys = run_plain(&mut rng, &g, 2);
        assert_eq!(keys[0], keys[1]);
    }
}
