//! The Saeednia–Safavi-Naini (SSN) ID-based GKA baseline (Table 1, last
//! column).
//!
//! The ACISP '98 paper is engineered here to the exact complexity profile
//! the reproduced paper reports for it — `2n + 4` modular exponentiations
//! per user, 2 messages transmitted, `2(n − 1)` received, no signature
//! generations or verifications (authentication is *implicit*, per-sender,
//! ID-based) — with 1024-bit ID-based values ("1024-bit SSN scheme"). See
//! `DESIGN.md` (substitution table) for why this preserves every behaviour
//! the evaluation depends on.
//!
//! Structure (a BD ring with per-sender GQ-style implicit authentication):
//!
//! ```text
//! Round 1:  m_i  = U_i ‖ z_i ‖ t_i        z_i = g^{r_i}, t_i = τ_i^e   [2 exp]
//! Round 2:  m'_i = U_i ‖ X_i ‖ s_i        c_i = H(U_i, z_i, X_i, t_i, Z)
//!                                         s_i = τ_i·S_{U_i}^{c_i}      [2 exp]
//! Check:    ∀j:  t_j == s_j^e · H(U_j)^{−c_j}                      [2 exp each]
//! Key:      K' = K_BD^{H_q(Z)}   (key-confirmation exponent)        [1 + 1 exp]
//! ```
//!
//! Unlike the proposed protocol's single batch check, each user verifies
//! every other member **individually** — the `2(n − 1)` verification
//! exponentiations are exactly what makes SSN's column grow with `n`
//! (and what the proposed protocol's batch verification eliminates).
//!
//! Per-node logic is a sans-IO [`crate::machine::RoundMachine`] sharing
//! the proposed protocol's two-round script shape; [`run`] is the blocking
//! driver over one [`SsnRun`].

use std::sync::Arc;

use egka_bigint::{mod_mul, mod_pow, Ubig};
use egka_energy::complexity::InitialProtocol;
use egka_energy::{CompOp, Meter};
use egka_hash::{hash_to_below, ChaChaRng};
use egka_sig::GqSecretKey;
use rand::SeedableRng;

use crate::bd;
use crate::ident::{ring_position, UserId};
use crate::machine::{
    two_round_script, Dest, Engine, Execution, Faults, Metered, Outgoing, PhaseOut, Pump,
};
use crate::params::Params;
use crate::proposed::{NodeReport, RunReport};
use crate::wire::{kind, Reader, Writer};

struct NodeState {
    idx: usize,
    id: UserId,
    /// Member identities in ring order (positions are ring indices; wire
    /// messages carry identities, which are looked up here).
    ring: Arc<Vec<UserId>>,
    key: GqSecretKey,
    params: Arc<Params>,
    meter: Meter,
    rng: ChaChaRng,
    share: Option<bd::Share>,
    tau: Ubig,
    zs: Vec<Ubig>,
    ts: Vec<Ubig>,
    xs: Vec<Ubig>,
    ss: Vec<Ubig>,
    derived: Option<Ubig>,
}

impl Metered for NodeState {
    fn meter(&self) -> &Meter {
        &self.meter
    }
}

/// The per-sender implicit-authentication challenge
/// `c_j = H(U_j ‖ z_j ‖ X_j ‖ t_j ‖ Z)`, reduced into `Z_e`' challenge
/// space (160 bits).
fn challenge(params: &Params, id: UserId, z: &Ubig, x: &Ubig, t: &Ubig, z_prod: &Ubig) -> Ubig {
    let mut w = Writer::new();
    w.put_id(id)
        .put_ubig(z)
        .put_ubig(x)
        .put_ubig(t)
        .put_ubig(z_prod);
    egka_hash::challenge_hash(&[&w.finish()]).rem_ref(&params.gq.e)
}

fn node_machine(state: NodeState, n: usize) -> Engine<NodeState> {
    let proto = InitialProtocol::Ssn;
    let phases = two_round_script(
        state.idx,
        kind::ROUND1,
        kind::ROUND2,
        n,
        // Round 1: fresh share + commitment, both priced individually.
        move |s: &mut NodeState| {
            let share = bd::round1_share(&mut s.rng, &s.params.bd);
            s.meter.record(CompOp::ModExp); // z_i
            let (tau, t) = s.params.gq.commit(&mut s.rng);
            s.meter.record(CompOp::ModExp); // t_i = τ^e (priced individually here)
            let mut w = Writer::new();
            w.put_id(s.id).put_ubig(&share.z).put_ubig(&t);
            s.zs[s.idx] = share.z.clone();
            s.ts[s.idx] = t;
            s.tau = tau;
            s.share = Some(share);
            Outgoing {
                to: Dest::Broadcast,
                kind: kind::ROUND1,
                payload: w.finish(),
                nominal_bits: proto.round1_bits(),
            }
        },
        // Absorb round 1, derive (X_i, s_i) under the per-sender challenge.
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("round-1 id");
                let z = r.get_ubig().expect("round-1 z");
                let t = r.get_ubig().expect("round-1 t");
                r.expect_end().expect("no trailing bytes");
                let j = ring_position(&s.ring, id, "round-1");
                s.zs[j] = z;
                s.ts[j] = t;
            }
            let share = s.share.as_ref().expect("round 1 done");
            let x = bd::round2_x(
                &s.params.bd,
                &share.r,
                &s.zs[(s.idx + n - 1) % n],
                &s.zs[(s.idx + 1) % n],
            );
            s.meter.record(CompOp::ModExp); // X_i
            s.meter.record(CompOp::ModInv);
            let z_prod =
                s.zs.iter()
                    .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &s.params.bd.p));
            let c = challenge(&s.params, s.id, &share.z, &x, &s.ts[s.idx], &z_prod);
            let resp = s.params.gq.respond(&s.key, &s.tau, &c);
            s.meter.record(CompOp::ModExp); // S^{c_i}
            s.xs[s.idx] = x;
            s.ss[s.idx] = resp;
        },
        move |s: &mut NodeState| {
            let mut w = Writer::new();
            w.put_id(s.id).put_ubig(&s.xs[s.idx]).put_ubig(&s.ss[s.idx]);
            Outgoing {
                to: Dest::Broadcast,
                kind: kind::ROUND2,
                payload: w.finish(),
                nominal_bits: proto.round2_bits(),
            }
        },
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("round-2 id");
                let x = r.get_ubig().expect("round-2 X");
                let resp = r.get_ubig().expect("round-2 s");
                r.expect_end().expect("no trailing bytes");
                let j = ring_position(&s.ring, id, "round-2");
                s.xs[j] = x;
                s.ss[j] = resp;
            }
        },
        // Per-sender implicit authentication + key (with confirmation
        // exponent).
        move |s: &mut NodeState| {
            let z_prod =
                s.zs.iter()
                    .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &s.params.bd.p));
            for j in 0..n {
                if j == s.idx {
                    continue;
                }
                let c = challenge(&s.params, s.ring[j], &s.zs[j], &s.xs[j], &s.ts[j], &z_prod);
                // t_j == s_j^e · H(U_j)^{−c_j}: two modular exponentiations.
                let se = mod_pow(&s.ss[j], &s.params.gq.e, &s.params.gq.n);
                s.meter.record(CompOp::ModExp);
                let h = s.params.gq.hash_id(&s.ring[j].to_bytes());
                let h_inv = egka_bigint::mod_inverse(&h, &s.params.gq.n).expect("unit");
                let hc = mod_pow(&h_inv, &c, &s.params.gq.n);
                s.meter.record(CompOp::ModExp);
                s.meter.record(CompOp::ModInv);
                let t_rec = mod_mul(&se, &hc, &s.params.gq.n);
                assert_eq!(t_rec, s.ts[j], "implicit authentication of U{j} failed");
            }
            let share = s.share.as_ref().expect("round 1 done");
            let ring: Vec<Ubig> = (0..n).map(|k| s.xs[(s.idx + k) % n].clone()).collect();
            let k_bd = bd::compute_key(&s.params.bd, &share.r, &s.zs[(s.idx + n - 1) % n], &ring);
            s.meter.record(CompOp::ModExp); // BD key
                                            // Key confirmation exponent: K' = K_BD^{H_q(Z)}.
            let kc = hash_to_below(
                b"egka.ssn.confirm.v1",
                &z_prod.to_bytes_be(),
                &s.params.bd.q,
            );
            let key = mod_pow(&k_bd, &kc, &s.params.bd.p);
            s.meter.record(CompOp::ModExp);
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        },
    );
    Engine::new(state, phases)
}

/// One in-flight SSN run (pumpable; see [`crate::proposed::GkaRun`]).
pub struct SsnRun {
    exec: Execution<NodeState>,
}

impl SsnRun {
    /// Prepares a run for `keys.len()` users.
    ///
    /// # Panics
    /// Panics if fewer than two keys are supplied or identities are not
    /// `U0..U(n-1)`.
    pub fn new(params: &Params, keys: &[GqSecretKey], seed: u64, faults: &Faults) -> Self {
        let n = keys.len();
        assert!(n >= 2, "a group needs at least two members");
        // Identities come from the extracted keys (arbitrary ids are fine:
        // wire messages carry identities, looked up by ring position).
        let ids: Vec<UserId> = keys
            .iter()
            .map(|k| {
                let b: [u8; 4] = k.id.as_slice().try_into().expect("32-bit identities");
                UserId::from_bytes(b)
            })
            .collect();
        let ring = Arc::new(ids.clone());
        let shared = Arc::new(params.clone());
        let exec = Execution::new(&ids, faults, |i, _| {
            node_machine(
                NodeState {
                    idx: i,
                    id: ids[i],
                    ring: Arc::clone(&ring),
                    key: keys[i].clone(),
                    params: Arc::clone(&shared),
                    meter: Meter::new(),
                    rng: ChaChaRng::seed_from_u64(
                        seed ^ (i as u64).wrapping_mul(0xd6e8_feb8_6659_fd93),
                    ),
                    share: None,
                    tau: Ubig::zero(),
                    zs: vec![Ubig::zero(); n],
                    ts: vec![Ubig::zero(); n],
                    xs: vec![Ubig::zero(); n],
                    ss: vec![Ubig::zero(); n],
                    derived: None,
                },
                n,
            )
        });
        SsnRun { exec }
    }

    /// One non-blocking scheduling sweep.
    pub fn pump(&mut self) -> Pump {
        self.exec.pump()
    }

    /// True iff every member derived the key.
    pub fn is_done(&self) -> bool {
        self.exec.is_done()
    }

    /// Terminal failure, if one surfaced (deadline expiry).
    pub fn failure(&self) -> Option<egka_net::NetError> {
        self.exec.failure()
    }

    /// Ops + traffic spent so far — the cost a scheduler charges for an
    /// aborted (stalled) attempt.
    pub fn partial_counts(&self) -> egka_energy::OpCounts {
        self.exec.partial_counts()
    }

    /// Virtual milliseconds this run has spent on its radio clock (`None`
    /// off-radio).
    pub fn virtual_elapsed_ms(&self) -> Option<f64> {
        self.exec.virtual_now_ms()
    }

    /// Like [`SsnRun::finish`], but also assembles a
    /// [`crate::GroupSession`] over `params` so the run can seed service
    /// state. SSN has no §7 dynamics — a membership change re-runs the
    /// whole protocol — but each member's BD share and GQ commitment are
    /// genuinely held, so they are carried faithfully.
    ///
    /// # Panics
    /// Panics if the run has not finished or keys diverged.
    pub fn finish_session(self, params: &Params) -> (RunReport, crate::GroupSession) {
        assert!(self.exec.is_done(), "finish() before the run completed");
        let members: Vec<crate::MemberState> = (0..self.exec.n())
            .map(|i| {
                let state = self.exec.machine(i).state();
                let share = state.share.as_ref().expect("round 1 done");
                crate::MemberState {
                    id: state.id,
                    gq_key: state.key.clone(),
                    r: share.r.clone(),
                    z: share.z.clone(),
                    tau: state.tau.clone(),
                    t: state.ts[state.idx].clone(),
                }
            })
            .collect();
        let report = self.finish();
        let session = crate::GroupSession {
            params: params.clone(),
            key: report.nodes[0].key.clone(),
            members,
        };
        (report, session)
    }

    /// Assembles the per-node reports.
    ///
    /// # Panics
    /// Panics if the run has not finished or keys diverged.
    pub fn finish(self) -> RunReport {
        assert!(self.exec.is_done(), "finish() before the run completed");
        let nodes: Vec<NodeReport> = (0..self.exec.n())
            .map(|i| {
                let state = self.exec.machine(i).state();
                NodeReport {
                    id: state.id,
                    key: state.derived.clone().expect("derived"),
                    counts: self.exec.node_counts(i),
                }
            })
            .collect();
        let report = RunReport { nodes, attempts: 1 };
        assert!(report.keys_agree(), "SSN keys must agree");
        report
    }
}

/// Runs the SSN protocol for `keys.len()` users.
///
/// # Panics
/// Panics on any failed implicit-authentication check (honest runs only).
pub fn run(params: &Params, keys: &[GqSecretKey], seed: u64) -> RunReport {
    let mut ssn = SsnRun::new(params, keys, seed, &Faults::none());
    loop {
        match ssn.pump() {
            Pump::Done => return ssn.finish(),
            Pump::Progressed => {}
            other => panic!("SSN run on a reliable medium cannot {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Pkg, SecurityProfile};

    fn setup(n: u32) -> (Params, Vec<GqSecretKey>) {
        let mut rng = ChaChaRng::seed_from_u64(0x53534e);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        (pkg.params().clone(), pkg.extract_group(n))
    }

    #[test]
    fn group_agrees() {
        let (params, keys) = setup(5);
        let report = run(&params, &keys, 1);
        assert!(report.keys_agree());
    }

    #[test]
    fn exponent_count_is_2n_plus_4() {
        for n in [2u32, 3, 6, 9] {
            let (params, keys) = setup(n);
            let report = run(&params, &keys, 2);
            let expect = InitialProtocol::Ssn.per_user_counts(n as u64);
            for node in &report.nodes {
                assert_eq!(node.counts.exps(), expect.exps(), "n = {n}, {}", node.id);
                assert_eq!(node.counts.msgs_tx, 2);
                assert_eq!(node.counts.msgs_rx, 2 * (n as u64 - 1));
                assert_eq!(node.counts.tx_bits, expect.tx_bits);
                assert_eq!(node.counts.rx_bits, expect.rx_bits);
            }
        }
    }

    #[test]
    fn no_signature_ops_are_recorded() {
        let (params, keys) = setup(4);
        let report = run(&params, &keys, 3);
        use egka_energy::Scheme;
        for node in &report.nodes {
            for s in Scheme::ALL {
                assert_eq!(node.counts.get(CompOp::SignGen(s)), 0);
                assert_eq!(node.counts.get(CompOp::SignVerify(s)), 0);
            }
        }
    }

    #[test]
    fn keys_differ_across_runs() {
        let (params, keys) = setup(3);
        assert_ne!(run(&params, &keys, 10).key(), run(&params, &keys, 11).key());
    }
}
