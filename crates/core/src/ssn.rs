//! The Saeednia–Safavi-Naini (SSN) ID-based GKA baseline (Table 1, last
//! column).
//!
//! The ACISP '98 paper is engineered here to the exact complexity profile
//! the reproduced paper reports for it — `2n + 4` modular exponentiations
//! per user, 2 messages transmitted, `2(n − 1)` received, no signature
//! generations or verifications (authentication is *implicit*, per-sender,
//! ID-based) — with 1024-bit ID-based values ("1024-bit SSN scheme"). See
//! `DESIGN.md` (substitution table) for why this preserves every behaviour
//! the evaluation depends on.
//!
//! Structure (a BD ring with per-sender GQ-style implicit authentication):
//!
//! ```text
//! Round 1:  m_i  = U_i ‖ z_i ‖ t_i        z_i = g^{r_i}, t_i = τ_i^e   [2 exp]
//! Round 2:  m'_i = U_i ‖ X_i ‖ s_i        c_i = H(U_i, z_i, X_i, t_i, Z)
//!                                         s_i = τ_i·S_{U_i}^{c_i}      [2 exp]
//! Check:    ∀j:  t_j == s_j^e · H(U_j)^{−c_j}                      [2 exp each]
//! Key:      K' = K_BD^{H_q(Z)}   (key-confirmation exponent)        [1 + 1 exp]
//! ```
//!
//! Unlike the proposed protocol's single batch check, each user verifies
//! every other member **individually** — the `2(n − 1)` verification
//! exponentiations are exactly what makes SSN's column grow with `n`
//! (and what the proposed protocol's batch verification eliminates).

use egka_bigint::{mod_mul, mod_pow, Ubig};
use egka_energy::complexity::InitialProtocol;
use egka_energy::{CompOp, Meter};
use egka_hash::{hash_to_below, ChaChaRng};
use egka_net::{Endpoint, Medium};
use egka_sig::GqSecretKey;
use rand::SeedableRng;

use crate::bd;
use crate::ident::UserId;
use crate::par::par_for_each_mut;
use crate::params::Params;
use crate::proposed::{NodeReport, RunReport};
use crate::wire::{kind, Reader, Writer};

struct Node {
    idx: usize,
    id: UserId,
    key: GqSecretKey,
    ep: Endpoint,
    meter: Meter,
    rng: ChaChaRng,
    share: Option<bd::Share>,
    tau: Ubig,
    zs: Vec<Ubig>,
    ts: Vec<Ubig>,
    xs: Vec<Ubig>,
    ss: Vec<Ubig>,
    derived: Option<Ubig>,
}

/// The per-sender implicit-authentication challenge
/// `c_j = H(U_j ‖ z_j ‖ X_j ‖ t_j ‖ Z)`, reduced into `Z_e`' challenge
/// space (160 bits).
fn challenge(params: &Params, id: UserId, z: &Ubig, x: &Ubig, t: &Ubig, z_prod: &Ubig) -> Ubig {
    let mut w = Writer::new();
    w.put_id(id)
        .put_ubig(z)
        .put_ubig(x)
        .put_ubig(t)
        .put_ubig(z_prod);
    egka_hash::challenge_hash(&[&w.finish()]).rem_ref(&params.gq.e)
}

/// Runs the SSN protocol for `keys.len()` users.
///
/// # Panics
/// Panics on any failed implicit-authentication check (honest runs only).
pub fn run(params: &Params, keys: &[GqSecretKey], seed: u64) -> RunReport {
    let n = keys.len();
    assert!(n >= 2, "a group needs at least two members");
    // This baseline is only exercised on freshly numbered groups; the
    // proposed protocol is the one that composes with dynamic events.
    assert!(
        keys.iter()
            .enumerate()
            .all(|(i, k)| k.id == UserId(i as u32).to_bytes()),
        "SSN driver expects identities U0..U{}",
        n - 1
    );
    let medium = Medium::new();
    let proto = InitialProtocol::Ssn;
    let mut nodes: Vec<Node> = (0..n)
        .map(|i| Node {
            idx: i,
            id: UserId(i as u32),
            key: keys[i].clone(),
            ep: medium.join(),
            meter: Meter::new(),
            rng: ChaChaRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)),
            share: None,
            tau: Ubig::zero(),
            zs: vec![Ubig::zero(); n],
            ts: vec![Ubig::zero(); n],
            xs: vec![Ubig::zero(); n],
            ss: vec![Ubig::zero(); n],
            derived: None,
        })
        .collect();

    // ---- Round 1 ----
    par_for_each_mut(&mut nodes, |_, node| {
        let share = bd::round1_share(&mut node.rng, &params.bd);
        node.meter.record(CompOp::ModExp); // z_i
        let (tau, t) = params.gq.commit(&mut node.rng);
        node.meter.record(CompOp::ModExp); // t_i = τ^e (priced individually here)
        let mut w = Writer::new();
        w.put_id(node.id).put_ubig(&share.z).put_ubig(&t);
        node.ep
            .broadcast(kind::ROUND1, w.finish(), proto.round1_bits());
        node.zs[node.idx] = share.z.clone();
        node.ts[node.idx] = t;
        node.tau = tau;
        node.share = Some(share);
    });
    par_for_each_mut(&mut nodes, |_, node| {
        for _ in 0..n - 1 {
            let pkt = node.ep.recv_kind(kind::ROUND1);
            let mut r = Reader::new(&pkt.payload);
            let id = r.get_id().expect("round-1 id");
            let z = r.get_ubig().expect("round-1 z");
            let t = r.get_ubig().expect("round-1 t");
            r.expect_end().expect("no trailing bytes");
            let j = id.0 as usize;
            node.zs[j] = z;
            node.ts[j] = t;
        }
    });

    // ---- Round 2 ----
    par_for_each_mut(&mut nodes, |_, node| {
        let share = node.share.as_ref().expect("round 1 done");
        let x = bd::round2_x(
            &params.bd,
            &share.r,
            &node.zs[(node.idx + n - 1) % n],
            &node.zs[(node.idx + 1) % n],
        );
        node.meter.record(CompOp::ModExp); // X_i
        node.meter.record(CompOp::ModInv);
        let z_prod = node
            .zs
            .iter()
            .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &params.bd.p));
        let c = challenge(params, node.id, &share.z, &x, &node.ts[node.idx], &z_prod);
        let s = params.gq.respond(&node.key, &node.tau, &c);
        node.meter.record(CompOp::ModExp); // S^{c_i}
        node.xs[node.idx] = x;
        node.ss[node.idx] = s;
    });
    let send = |node: &Node| {
        let mut w = Writer::new();
        w.put_id(node.id)
            .put_ubig(&node.xs[node.idx])
            .put_ubig(&node.ss[node.idx]);
        node.ep
            .broadcast(kind::ROUND2, w.finish(), proto.round2_bits());
    };
    for node in nodes.iter().skip(1) {
        send(node);
    }
    {
        let controller = &mut nodes[0];
        for _ in 0..n - 1 {
            let pkt = controller.ep.recv_kind(kind::ROUND2);
            store_round2(controller, &pkt.payload);
        }
        send(&nodes[0]);
    }
    par_for_each_mut(&mut nodes[1..], |_, node| {
        for _ in 0..n - 1 {
            let pkt = node.ep.recv_kind(kind::ROUND2);
            store_round2(node, &pkt.payload);
        }
    });

    // ---- Per-sender implicit authentication + key ----
    par_for_each_mut(&mut nodes, |_, node| {
        let z_prod = node
            .zs
            .iter()
            .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &params.bd.p));
        for j in 0..n {
            if j == node.idx {
                continue;
            }
            let c = challenge(
                params,
                UserId(j as u32),
                &node.zs[j],
                &node.xs[j],
                &node.ts[j],
                &z_prod,
            );
            // t_j == s_j^e · H(U_j)^{−c_j}: two modular exponentiations.
            let se = mod_pow(&node.ss[j], &params.gq.e, &params.gq.n);
            node.meter.record(CompOp::ModExp);
            let h = params.gq.hash_id(&UserId(j as u32).to_bytes());
            let h_inv = egka_bigint::mod_inverse(&h, &params.gq.n).expect("unit");
            let hc = mod_pow(&h_inv, &c, &params.gq.n);
            node.meter.record(CompOp::ModExp);
            node.meter.record(CompOp::ModInv);
            let t_rec = mod_mul(&se, &hc, &params.gq.n);
            assert_eq!(t_rec, node.ts[j], "implicit authentication of U{j} failed");
        }
        let share = node.share.as_ref().expect("round 1 done");
        let ring: Vec<Ubig> = (0..n)
            .map(|k| node.xs[(node.idx + k) % n].clone())
            .collect();
        let k_bd = bd::compute_key(
            &params.bd,
            &share.r,
            &node.zs[(node.idx + n - 1) % n],
            &ring,
        );
        node.meter.record(CompOp::ModExp); // BD key
                                           // Key confirmation exponent: K' = K_BD^{H_q(Z)}.
        let kc = hash_to_below(b"egka.ssn.confirm.v1", &z_prod.to_bytes_be(), &params.bd.q);
        let key = mod_pow(&k_bd, &kc, &params.bd.p);
        node.meter.record(CompOp::ModExp);
        node.derived = Some(key);
    });

    let nodes_out: Vec<NodeReport> = nodes
        .iter()
        .map(|node| {
            let mut counts = node.meter.snapshot();
            let stats = medium.stats(node.ep.id());
            counts.tx_bits = stats.tx_bits;
            counts.rx_bits = stats.rx_bits;
            counts.tx_bits_actual = stats.tx_bits_actual;
            counts.rx_bits_actual = stats.rx_bits_actual;
            counts.msgs_tx = stats.msgs_tx;
            counts.msgs_rx = stats.msgs_rx;
            NodeReport {
                id: node.id,
                key: node.derived.clone().expect("derived"),
                counts,
            }
        })
        .collect();
    let report = RunReport {
        nodes: nodes_out,
        attempts: 1,
    };
    assert!(report.keys_agree(), "SSN keys must agree");
    report
}

fn store_round2(node: &mut Node, payload: &[u8]) {
    let mut r = Reader::new(payload);
    let id = r.get_id().expect("round-2 id");
    let x = r.get_ubig().expect("round-2 X");
    let s = r.get_ubig().expect("round-2 s");
    r.expect_end().expect("no trailing bytes");
    let j = id.0 as usize;
    node.xs[j] = x;
    node.ss[j] = s;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Pkg, SecurityProfile};

    fn setup(n: u32) -> (Params, Vec<GqSecretKey>) {
        let mut rng = ChaChaRng::seed_from_u64(0x53534e);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        (pkg.params().clone(), pkg.extract_group(n))
    }

    #[test]
    fn group_agrees() {
        let (params, keys) = setup(5);
        let report = run(&params, &keys, 1);
        assert!(report.keys_agree());
    }

    #[test]
    fn exponent_count_is_2n_plus_4() {
        for n in [2u32, 3, 6, 9] {
            let (params, keys) = setup(n);
            let report = run(&params, &keys, 2);
            let expect = InitialProtocol::Ssn.per_user_counts(n as u64);
            for node in &report.nodes {
                assert_eq!(node.counts.exps(), expect.exps(), "n = {n}, {}", node.id);
                assert_eq!(node.counts.msgs_tx, 2);
                assert_eq!(node.counts.msgs_rx, 2 * (n as u64 - 1));
                assert_eq!(node.counts.tx_bits, expect.tx_bits);
                assert_eq!(node.counts.rx_bits, expect.rx_bits);
            }
        }
    }

    #[test]
    fn no_signature_ops_are_recorded() {
        let (params, keys) = setup(4);
        let report = run(&params, &keys, 3);
        use egka_energy::Scheme;
        for node in &report.nodes {
            for s in Scheme::ALL {
                assert_eq!(node.counts.get(CompOp::SignGen(s)), 0);
                assert_eq!(node.counts.get(CompOp::SignVerify(s)), 0);
            }
        }
    }

    #[test]
    fn keys_differ_across_runs() {
        let (params, keys) = setup(3);
        assert_ne!(run(&params, &keys, 10).key(), run(&params, &keys, 11).key());
    }
}
