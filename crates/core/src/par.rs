//! Tiny data-parallel helper for per-node round computation.
//!
//! Protocol drivers run every node's round-`k` computation before any
//! node's round-`k+1` (lockstep rounds, exactly the paper's model). Within
//! a round the nodes are independent, so the driver fans the slice of node
//! states across scoped threads — on the big sweeps (`n = 500`, SSN's
//! `2n+4` exponentiations per node) this is the difference between minutes
//! and seconds of wall-clock.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every element, in parallel across up to
/// [`worker_count`] scoped threads. Indexes are the element positions.
///
/// Work is distributed by atomic work-stealing counter rather than fixed
/// chunks: protocol roles are asymmetric (the controller does more), so
/// static chunking would leave threads idle.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = worker_count().min(items.len().max(1));
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    // Hand out &mut T cells through a Vec of Options guarded by the atomic
    // ticket: each index is claimed exactly once, so the unsafe-free way is
    // to wrap items in Mutexes — but that serializes nothing here since
    // each lock is taken once. parking_lot would do; std Mutex suffices.
    let cells: Vec<std::sync::Mutex<&mut T>> =
        items.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let mut guard = cells[i].lock().expect("ticketed lock is uncontended");
                f(i, &mut guard);
            });
        }
    });
}

/// Number of worker threads used for per-node fan-out (the machine's
/// available parallelism, falling back to 1).
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_to_every_element_once() {
        let mut v: Vec<u64> = (0..1000).collect();
        par_for_each_mut(&mut v, |i, x| {
            assert_eq!(*x, i as u64);
            *x += 1;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn handles_empty_and_single() {
        let mut empty: Vec<u32> = vec![];
        par_for_each_mut(&mut empty, |_, _| unreachable!());
        let mut one = vec![7u32];
        par_for_each_mut(&mut one, |_, x| *x = 8);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Element 0 is much heavier; the ticket counter keeps other threads
        // busy with the rest. (Correctness check, not a timing assertion.)
        let mut v = vec![0u64; 64];
        par_for_each_mut(&mut v, |i, x| {
            let spins = if i == 0 { 100_000 } else { 100 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(k);
            }
            *x = acc;
        });
        assert!(v.iter().all(|&x| x > 0));
    }
}
