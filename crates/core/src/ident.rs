//! User identities.
//!
//! The paper's users carry 32-bit identities (`Extract: the PKG verifies the
//! 32-bit identity U_i`); [`UserId`] is that identity. Everything that hashes
//! or transmits an identity goes through [`UserId::to_bytes`] so the wire
//! width matches the accounting width (`egka_energy::wire::ID_BITS`).

use core::fmt;

/// A 32-bit user identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

impl UserId {
    /// Canonical 4-byte big-endian encoding (32 bits on the wire).
    pub fn to_bytes(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Inverse of [`UserId::to_bytes`].
    pub fn from_bytes(b: [u8; 4]) -> Self {
        UserId(u32::from_be_bytes(b))
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// Ring position of `id` in `ring` — for resolving a wire message's sender
/// identity to its protocol role. Honest-run protocols treat an unknown
/// sender as a scripting bug, hence the panic.
///
/// # Panics
/// Panics (with `what` naming the round) if `id` is not in `ring`.
pub(crate) fn ring_position(ring: &[UserId], id: UserId, what: &str) -> usize {
    ring.iter()
        .position(|&u| u == id)
        .unwrap_or_else(|| panic!("{what} sender is a ring member"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        for v in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(UserId::from_bytes(UserId(v).to_bytes()), UserId(v));
        }
    }

    #[test]
    fn display_is_paper_notation() {
        assert_eq!(UserId(7).to_string(), "U7");
    }
}
