//! Protocol-erased suites: one object-safe boundary over all five GKA
//! protocols.
//!
//! The paper's argument is comparative — the proposed GQ-batch scheme vs
//! the SOK/ECDSA/DSA-authenticated BD baselines and the SSN ID-based
//! scheme, priced per hardware profile. This module makes that comparison
//! *executable at the service layer*: a [`Suite`] packages one protocol's
//!
//! * **run constructors** — the initial GKA and the §7 dynamics (Join,
//!   Partition, batched-join Merge, cross-group Merge), each returned as a
//!   boxed [`SuiteRun`] whose nodes are sans-IO
//!   [`crate::machine::RoundMachine`]s pumped by a scheduler;
//! * **closed-form complexity hooks** — group-total [`OpCounts`] from
//!   `egka_energy::complexity`, the same shapes the instrumented runs are
//!   asserted to match, so a planner can price a suite without running it.
//!
//! Behind `dyn Suite`, `egka-service` runs *any* of the five protocols per
//! group and its planner can pick the cheapest suite for the hardware at
//! hand (see `egka_service::SuitePolicy`).
//!
//! ## Dynamics realization
//!
//! Only the proposed scheme has native §7 dynamics
//! ([`Suite::native_dynamics`]). The baselines follow the paper's own
//! baseline convention: **every membership change re-runs the whole
//! protocol** over the final membership — which is exactly what their
//! closed-form hooks price, and what makes Table 5's 10–100× headline
//! reproducible at the service layer.
//!
//! ```
//! use egka_core::suite::{suite, SuiteId, StepCtx};
//! use egka_core::{Faults, Pkg, Pump, SecurityProfile, UserId};
//! use egka_hash::ChaChaRng;
//! use rand::SeedableRng;
//!
//! let mut rng = ChaChaRng::seed_from_u64(7);
//! let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
//! let members: Vec<UserId> = (0..4).map(UserId).collect();
//! let faults_for = |_seed: u64| Faults::none();
//! let ctx = StepCtx { pkg: &pkg, seed: 42, composable_joins: true, faults_for: &faults_for };
//!
//! // The same call shape drives any of the five protocols.
//! for id in [SuiteId::Proposed, SuiteId::Ssn] {
//!     let mut run = suite(id).initial(&ctx, pkg.params(), &members);
//!     while run.pump() == Pump::Progressed {}
//!     let out = run.finish();
//!     assert_eq!(out.session.member_ids(), members);
//! }
//! ```

use std::sync::OnceLock;

use egka_energy::complexity::{
    proposed_join, proposed_merge, proposed_partition, InitialProtocol, RoleCounts,
};
use egka_energy::{CompOp, OpCounts};
use egka_hash::ChaChaRng;
use egka_sig::{Dsa, Ecdsa, GqSecretKey};
use rand::SeedableRng;

use crate::authbd::{AuthBdRun, AuthKit};
use crate::dynamics::{JoinRun, LeaveRun, MergeRun};
use crate::group::GroupSession;
use crate::ident::UserId;
use crate::machine::{Faults, Pump};
use crate::params::{Params, Pkg};
use crate::proposed::{GkaRun, NodeReport, RunConfig};
use crate::ssn::SsnRun;

/// Deterministic 64-bit mixing for derived seeds (splitmix64 finalizer).
/// Every scheduler-side seed chain (per-group, per-step, per-retry) is
/// built from this one function, so suites and schedulers derive identical
/// streams.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable identity of one GKA suite — the five columns of the paper's
/// Table 1. The discriminant order is the table's column order and is
/// part of the public contract (ties in cost comparisons break toward the
/// earlier column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SuiteId {
    /// The paper's proposal: BD + GQ batch verification, native §7
    /// dynamics.
    Proposed,
    /// BD authenticated with SOK (pairing) signatures.
    BdSok,
    /// BD authenticated with ECDSA + certificates.
    BdEcdsa,
    /// BD authenticated with DSA + certificates.
    BdDsa,
    /// The Saeednia–Safavi-Naini ID-based scheme.
    Ssn,
}

impl SuiteId {
    /// All suites, Table 1 column order.
    pub const ALL: [SuiteId; 5] = [
        SuiteId::Proposed,
        SuiteId::BdSok,
        SuiteId::BdEcdsa,
        SuiteId::BdDsa,
        SuiteId::Ssn,
    ];

    /// The Table 1 column this suite instantiates.
    pub fn protocol(self) -> InitialProtocol {
        match self {
            SuiteId::Proposed => InitialProtocol::ProposedGqBatch,
            SuiteId::BdSok => InitialProtocol::BdSok,
            SuiteId::BdEcdsa => InitialProtocol::BdEcdsa,
            SuiteId::BdDsa => InitialProtocol::BdDsa,
            SuiteId::Ssn => InitialProtocol::Ssn,
        }
    }

    /// Short machine-friendly key (`proposed`, `bd_sok`, …).
    pub fn key(self) -> &'static str {
        self.protocol().key()
    }

    /// Column header as printed in the paper.
    pub fn name(self) -> &'static str {
        self.protocol().name()
    }

    /// Parses a [`SuiteId::key`] back into the id.
    pub fn from_key(key: &str) -> Option<SuiteId> {
        SuiteId::ALL.into_iter().find(|s| s.key() == key)
    }

    /// Stable one-byte code for persisted state (never reorder: stored
    /// snapshots reference these values).
    pub fn code(self) -> u8 {
        match self {
            SuiteId::Proposed => 0,
            SuiteId::BdSok => 1,
            SuiteId::BdEcdsa => 2,
            SuiteId::BdDsa => 3,
            SuiteId::Ssn => 4,
        }
    }

    /// Parses a [`SuiteId::code`] back into the id.
    pub fn from_code(code: u8) -> Option<SuiteId> {
        SuiteId::ALL.into_iter().find(|s| s.code() == code)
    }
}

/// Per-step execution context a scheduler hands to a suite's run
/// constructors.
pub struct StepCtx<'a> {
    /// The PKG identities/keys are extracted from.
    pub pkg: &'a Pkg,
    /// The (retry-salted) step seed: all of the step's randomness derives
    /// from it via [`mix`].
    pub seed: u64,
    /// Whether proposed Joins run in composable mode (`z'_1`
    /// disseminated — see `egka_core::dynamics`).
    pub composable_joins: bool,
    /// Maps a derived seed to the fault plan (loss/detachment/radio) its
    /// medium runs under — the scheduler owns loss salting, the suite owns
    /// how many media a step needs (a batched join needs two).
    pub faults_for: &'a dyn Fn(u64) -> Faults,
}

impl StepCtx<'_> {
    /// The fault plan for the step's primary medium.
    pub fn faults(&self) -> Faults {
        (self.faults_for)(self.seed)
    }
}

/// Outcome of a completed [`SuiteRun`].
pub struct SuiteOutcome {
    /// Per-node reports (keys + instrumented counts) of every protocol
    /// execution the step ran, concatenated.
    pub reports: Vec<NodeReport>,
    /// The resulting group session.
    pub session: GroupSession,
    /// Full initial-GKA executions among them (fallbacks and the newcomer
    /// half of a batched join).
    pub gka_runs: u64,
}

/// One in-flight, pumpable protocol step — the object-safe handle a
/// scheduler interleaves. Each implementation wraps one or more
/// [`crate::machine::Execution`]s of per-node [`crate::RoundMachine`]s.
pub trait SuiteRun: Send {
    /// One non-blocking scheduling sweep; see
    /// [`crate::machine::Execution::pump`].
    fn pump(&mut self) -> Pump;

    /// True iff every machine of every execution finished.
    fn is_done(&self) -> bool;

    /// Ops + traffic spent so far — what a scheduler charges for an
    /// aborted (stalled / timed-out) attempt.
    fn partial_counts(&self) -> OpCounts;

    /// Virtual radio milliseconds consumed so far (0 on the instant
    /// medium), completed sub-executions included.
    fn virtual_elapsed_ms(&self) -> f64;

    /// Assembles the outcome.
    ///
    /// # Panics
    /// Panics if the run has not finished.
    fn finish(self: Box<Self>) -> SuiteOutcome;
}

/// One GKA protocol behind a uniform, object-safe surface: run
/// constructors for the initial agreement and every §7 dynamic, plus the
/// closed-form group-total costs the planner prices them with.
///
/// Implementations are stateless; get them from [`suite`].
pub trait Suite: Send + Sync {
    /// Stable identity.
    fn id(&self) -> SuiteId;

    /// Whether the suite has native §7 dynamics. When `false`, the
    /// dynamic constructors realize every membership change as a full
    /// re-run over the final membership (the paper's baseline convention),
    /// and a planner should collapse a whole event batch into one
    /// full rekey.
    fn native_dynamics(&self) -> bool {
        self.id() == SuiteId::Proposed
    }

    // ---- run constructors ----

    /// The initial GKA over `members` (keys extracted from `ctx.pkg`).
    fn initial(&self, ctx: &StepCtx<'_>, params: &Params, members: &[UserId]) -> Box<dyn SuiteRun>;

    /// One newcomer joins `session`.
    fn join_one(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        newcomer: UserId,
    ) -> Box<dyn SuiteRun>;

    /// `leavers` depart `session` in one reduced rekey (a single leaver
    /// degenerates to the Leave protocol).
    fn partition(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        leavers: &[UserId],
    ) -> Box<dyn SuiteRun>;

    /// `k ≥ 2` newcomers join `session` as a batch (proposed: newcomers
    /// run their own initial GKA, then one Merge).
    fn merge_newcomers(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        newcomers: &[UserId],
    ) -> Box<dyn SuiteRun>;

    /// Two agreed groups fold into one (`host` ring first).
    fn merge_groups(
        &self,
        ctx: &StepCtx<'_>,
        host: &GroupSession,
        other: &GroupSession,
    ) -> Box<dyn SuiteRun>;

    /// Full re-run of the initial GKA over `members` (the planner's
    /// fallback step; identical to [`Suite::initial`]).
    fn full_rekey(
        &self,
        ctx: &StepCtx<'_>,
        params: &Params,
        members: &[UserId],
    ) -> Box<dyn SuiteRun> {
        self.initial(ctx, params, members)
    }

    // ---- closed-form complexity hooks (group totals) ----

    /// Per-user closed-form counts of the initial GKA at size `n`
    /// (Table 1 column evaluated at `n`).
    fn initial_per_user(&self, n: u64) -> OpCounts {
        self.id().protocol().per_user_counts(n)
    }

    /// Group-total closed-form cost of the initial GKA at size `n`.
    fn initial_total(&self, n: u64) -> OpCounts {
        let mut total = OpCounts::new();
        total.merge_scaled(&self.initial_per_user(n), n);
        total
    }

    /// Group-total closed-form cost of one Join at current size `n`.
    /// Baselines: one full re-run at `n + 1`.
    fn join_total(&self, n: u64, _composable: bool) -> OpCounts {
        self.initial_total(n + 1)
    }

    /// Group-total closed-form cost of `k` sequential Joins starting at
    /// size `n`. Baselines apply a batch as one re-run at `n + k` — for
    /// them this equals [`Suite::batch_join_total`] by construction.
    fn sequential_joins_total(&self, n: u64, k: u64, _composable: bool) -> OpCounts {
        self.initial_total(n + k)
    }

    /// Group-total closed-form cost of the batched-join plan for `k ≥ 2`
    /// newcomers at size `n`.
    fn batch_join_total(&self, n: u64, k: u64) -> OpCounts {
        assert!(k >= 2, "batch path needs at least two newcomers");
        self.initial_total(n + k)
    }

    /// Group-total closed-form cost of a Partition removing `ld` of `n`
    /// members with `v` refreshers. Baselines: one full re-run over the
    /// `n − ld` survivors.
    fn partition_total(&self, n: u64, ld: u64, _v: u64) -> OpCounts {
        self.initial_total(n - ld)
    }

    /// Group-total closed-form cost of merging groups of size `n` and
    /// `m`. Baselines: one full re-run at `n + m`.
    fn merge_total(&self, n: u64, m: u64) -> OpCounts {
        self.initial_total(n + m)
    }

    /// Group-total closed-form cost of a full rekey at size `n`.
    fn full_rekey_total(&self, n: u64) -> OpCounts {
        self.initial_total(n)
    }
}

/// The suite registry: the five Table 1 columns as `&'static dyn Suite`.
pub fn suite(id: SuiteId) -> &'static dyn Suite {
    match id {
        SuiteId::Proposed => &ProposedSuite,
        SuiteId::BdSok => &BaselineSuite(SuiteId::BdSok),
        SuiteId::BdEcdsa => &BaselineSuite(SuiteId::BdEcdsa),
        SuiteId::BdDsa => &BaselineSuite(SuiteId::BdDsa),
        SuiteId::Ssn => &BaselineSuite(SuiteId::Ssn),
    }
}

/// Sums per-role closed-form counts over their populations.
pub fn roles_total(roles: &[RoleCounts]) -> OpCounts {
    let mut total = OpCounts::new();
    for role in roles {
        total.merge_scaled(&role.counts, role.population);
    }
    total
}

fn extract_keys(pkg: &Pkg, members: &[UserId]) -> Vec<GqSecretKey> {
    members.iter().map(|&u| pkg.extract(u)).collect()
}

// ===================== the proposed suite =====================

/// The paper's proposal (§4 initial GKA + native §7 dynamics).
struct ProposedSuite;

impl Suite for ProposedSuite {
    fn id(&self) -> SuiteId {
        SuiteId::Proposed
    }

    fn initial(&self, ctx: &StepCtx<'_>, params: &Params, members: &[UserId]) -> Box<dyn SuiteRun> {
        let keys = extract_keys(ctx.pkg, members);
        Box::new(ProposedInitial(GkaRun::new(
            params,
            &keys,
            ctx.seed,
            RunConfig::default(),
            &ctx.faults(),
        )))
    }

    fn join_one(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        newcomer: UserId,
    ) -> Box<dyn SuiteRun> {
        let key = ctx.pkg.extract(newcomer);
        Box::new(ProposedJoin(JoinRun::new(
            session,
            newcomer,
            &key,
            ctx.seed,
            ctx.composable_joins,
            &ctx.faults(),
        )))
    }

    fn partition(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        leavers: &[UserId],
    ) -> Box<dyn SuiteRun> {
        let positions: std::collections::BTreeSet<usize> = leavers
            .iter()
            .map(|&u| {
                session
                    .position_of(u)
                    .expect("planner only removes live members")
            })
            .collect();
        Box::new(ProposedPartition(LeaveRun::new(
            session,
            &positions,
            ctx.seed,
            &ctx.faults(),
        )))
    }

    fn merge_newcomers(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        newcomers: &[UserId],
    ) -> Box<dyn SuiteRun> {
        let keys = extract_keys(ctx.pkg, newcomers);
        // The merge half's seed (and its loss/radio salt) derives from the
        // step seed, so a retried attempt re-rolls both halves.
        let merge_seed = mix(ctx.seed, 0x6d);
        Box::new(ProposedMergeNewcomers {
            gka: Some(GkaRun::new(
                &session.params,
                &keys,
                ctx.seed,
                RunConfig::default(),
                &ctx.faults(),
            )),
            merge: None,
            base: session.clone(),
            merge_seed,
            merge_faults: (ctx.faults_for)(merge_seed),
            carried: OpCounts::new(),
            carried_reports: Vec::new(),
            carried_virtual_ms: 0.0,
        })
    }

    fn merge_groups(
        &self,
        ctx: &StepCtx<'_>,
        host: &GroupSession,
        other: &GroupSession,
    ) -> Box<dyn SuiteRun> {
        Box::new(ProposedMerge(MergeRun::new(
            host,
            other,
            ctx.seed,
            &ctx.faults(),
        )))
    }

    fn join_total(&self, n: u64, composable: bool) -> OpCounts {
        let mut total = roles_total(&proposed_join(n));
        if composable {
            // U_1 computes and ships z'_1 inside m'_1: one extra
            // exponentiation, +Z_BITS on the wire, received by the n−1
            // other old-group members.
            total.add(CompOp::ModExp, 1);
            total.tx_bits += egka_energy::wire::Z_BITS;
            total.rx_bits += egka_energy::wire::Z_BITS * (n - 1);
        }
        total
    }

    fn sequential_joins_total(&self, n: u64, k: u64, composable: bool) -> OpCounts {
        let mut total = OpCounts::new();
        for i in 0..k {
            total.merge(&self.join_total(n + i, composable));
        }
        total
    }

    fn batch_join_total(&self, n: u64, k: u64) -> OpCounts {
        assert!(k >= 2, "batch path needs at least two newcomers");
        let mut total = self.initial_total(k);
        total.merge(&roles_total(&proposed_merge(n, k)));
        total
    }

    fn partition_total(&self, n: u64, ld: u64, v: u64) -> OpCounts {
        roles_total(&proposed_partition(n, ld, v))
    }

    fn merge_total(&self, n: u64, m: u64) -> OpCounts {
        roles_total(&proposed_merge(n, m))
    }
}

struct ProposedInitial(GkaRun);

impl SuiteRun for ProposedInitial {
    fn pump(&mut self) -> Pump {
        self.0.pump()
    }

    fn is_done(&self) -> bool {
        self.0.is_done()
    }

    fn partial_counts(&self) -> OpCounts {
        self.0.partial_counts()
    }

    fn virtual_elapsed_ms(&self) -> f64 {
        self.0.virtual_elapsed_ms().unwrap_or(0.0)
    }

    fn finish(self: Box<Self>) -> SuiteOutcome {
        let (report, session) = self.0.finish();
        SuiteOutcome {
            reports: report.nodes,
            session,
            gka_runs: 1,
        }
    }
}

struct ProposedJoin(JoinRun);

impl SuiteRun for ProposedJoin {
    fn pump(&mut self) -> Pump {
        self.0.pump()
    }

    fn is_done(&self) -> bool {
        self.0.is_done()
    }

    fn partial_counts(&self) -> OpCounts {
        self.0.partial_counts()
    }

    fn virtual_elapsed_ms(&self) -> f64 {
        self.0.virtual_elapsed_ms().unwrap_or(0.0)
    }

    fn finish(self: Box<Self>) -> SuiteOutcome {
        let out = self.0.finish();
        SuiteOutcome {
            reports: out.reports,
            session: out.session,
            gka_runs: 0,
        }
    }
}

struct ProposedPartition(LeaveRun);

impl SuiteRun for ProposedPartition {
    fn pump(&mut self) -> Pump {
        self.0.pump()
    }

    fn is_done(&self) -> bool {
        self.0.is_done()
    }

    fn partial_counts(&self) -> OpCounts {
        self.0.partial_counts()
    }

    fn virtual_elapsed_ms(&self) -> f64 {
        self.0.virtual_elapsed_ms().unwrap_or(0.0)
    }

    fn finish(self: Box<Self>) -> SuiteOutcome {
        let out = self.0.finish();
        SuiteOutcome {
            reports: out.reports,
            session: out.session,
            gka_runs: 0,
        }
    }
}

struct ProposedMerge(MergeRun);

impl SuiteRun for ProposedMerge {
    fn pump(&mut self) -> Pump {
        self.0.pump()
    }

    fn is_done(&self) -> bool {
        self.0.is_done()
    }

    fn partial_counts(&self) -> OpCounts {
        self.0.partial_counts()
    }

    fn virtual_elapsed_ms(&self) -> f64 {
        self.0.virtual_elapsed_ms().unwrap_or(0.0)
    }

    fn finish(self: Box<Self>) -> SuiteOutcome {
        let out = self.0.finish();
        SuiteOutcome {
            reports: out.reports,
            session: out.session,
            gka_runs: 0,
        }
    }
}

/// The batched join: the newcomers' own initial GKA, then one Merge of the
/// newcomer ring into the group — two executions behind one pumpable run.
struct ProposedMergeNewcomers {
    gka: Option<GkaRun>,
    merge: Option<MergeRun>,
    base: GroupSession,
    merge_seed: u64,
    merge_faults: Faults,
    /// Completed-half counts/reports, so a stall in the merge half still
    /// charges the newcomer GKA.
    carried: OpCounts,
    carried_reports: Vec<NodeReport>,
    carried_virtual_ms: f64,
}

impl SuiteRun for ProposedMergeNewcomers {
    fn pump(&mut self) -> Pump {
        if let Some(gka) = &mut self.gka {
            return match gka.pump() {
                Pump::Done => {
                    let gka = self.gka.take().expect("checked above");
                    self.carried_virtual_ms += gka.virtual_elapsed_ms().unwrap_or(0.0);
                    let (report, newcomer_session) = gka.finish();
                    for node in &report.nodes {
                        self.carried.merge(&node.counts);
                    }
                    self.carried_reports.extend(report.nodes);
                    self.merge = Some(MergeRun::new(
                        &self.base,
                        &newcomer_session,
                        self.merge_seed,
                        &self.merge_faults,
                    ));
                    Pump::Progressed
                }
                other => other,
            };
        }
        self.merge.as_mut().expect("one half is active").pump()
    }

    fn is_done(&self) -> bool {
        self.merge.as_ref().is_some_and(MergeRun::is_done)
    }

    fn partial_counts(&self) -> OpCounts {
        let mut total = self.carried.clone();
        match (&self.gka, &self.merge) {
            (Some(gka), _) => total.merge(&gka.partial_counts()),
            (None, Some(merge)) => total.merge(&merge.partial_counts()),
            (None, None) => unreachable!("one half is always active"),
        }
        total
    }

    fn virtual_elapsed_ms(&self) -> f64 {
        let active = match (&self.gka, &self.merge) {
            (Some(gka), _) => gka.virtual_elapsed_ms(),
            (None, Some(merge)) => merge.virtual_elapsed_ms(),
            (None, None) => unreachable!("one half is always active"),
        };
        self.carried_virtual_ms + active.unwrap_or(0.0)
    }

    fn finish(mut self: Box<Self>) -> SuiteOutcome {
        let merge = self.merge.take().expect("finish() after both halves");
        let out = merge.finish();
        let mut reports = self.carried_reports;
        reports.extend(out.reports);
        SuiteOutcome {
            reports,
            session: out.session,
            gka_runs: 1,
        }
    }
}

// ===================== the baseline suites =====================

/// An authenticated-BD or SSN baseline: the real protocol for the initial
/// GKA, full re-runs for every dynamic.
struct BaselineSuite(SuiteId);

/// The SOK fixture deployment: one deterministic pairing group shared by
/// every SOK run (PKG setup per run is re-seeded from the step seed).
/// Energy is priced from operation counts and the paper's nominal wire
/// sizes, so the fixture's curve size only affects the measured
/// "actual bits" ablation, never the priced joules.
fn sok_pairing() -> &'static egka_ec::PairingGroup {
    static GROUP: OnceLock<egka_ec::PairingGroup> = OnceLock::new();
    GROUP.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x50a1_c0de);
        egka_ec::gen_pairing_group(&mut rng, 96, 64)
    })
}

/// The DSA fixture scheme (deterministic Schnorr group), same rationale
/// as [`sok_pairing`].
fn dsa_scheme() -> &'static Dsa {
    static SCHEME: OnceLock<Dsa> = OnceLock::new();
    SCHEME.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0xd5a_c0de);
        Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 256, 96))
    })
}

impl BaselineSuite {
    /// Provisions this suite's credentials for `members` — like the PKG's
    /// `Extract`, provisioning happens off-air and is not metered.
    fn provision(&self, seed: u64, members: &[UserId]) -> Option<AuthKit> {
        let mut rng = ChaChaRng::seed_from_u64(mix(seed, 0x5e70b));
        match self.0 {
            SuiteId::BdSok => Some(AuthKit::setup_sok_for(
                &mut rng,
                sok_pairing().clone(),
                members,
            )),
            SuiteId::BdEcdsa => Some(AuthKit::setup_ecdsa_for(
                &mut rng,
                Ecdsa::new(egka_ec::secp160r1()),
                members,
            )),
            SuiteId::BdDsa => Some(AuthKit::setup_dsa_for(
                &mut rng,
                dsa_scheme().clone(),
                members,
            )),
            SuiteId::Ssn => None,
            SuiteId::Proposed => unreachable!("the proposed suite is not a baseline"),
        }
    }

    /// The full protocol run over `members` — the baseline realization of
    /// every step.
    fn rerun(&self, ctx: &StepCtx<'_>, params: &Params, members: &[UserId]) -> Box<dyn SuiteRun> {
        assert!(members.len() >= 2, "a group needs at least two members");
        let faults = ctx.faults();
        let gq_keys = extract_keys(ctx.pkg, members);
        let inner = match self.provision(ctx.seed, members) {
            Some(kit) => BaselineInner::AuthBd(AuthBdRun::new(
                &params.bd,
                &kit,
                ctx.seed,
                &faults,
                |_, _| false,
            )),
            None => BaselineInner::Ssn(SsnRun::new(params, &gq_keys, ctx.seed, &faults)),
        };
        Box::new(BaselineRun {
            inner,
            params: params.clone(),
            gq_keys,
        })
    }
}

impl Suite for BaselineSuite {
    fn id(&self) -> SuiteId {
        self.0
    }

    fn initial(&self, ctx: &StepCtx<'_>, params: &Params, members: &[UserId]) -> Box<dyn SuiteRun> {
        self.rerun(ctx, params, members)
    }

    fn join_one(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        newcomer: UserId,
    ) -> Box<dyn SuiteRun> {
        let mut members = session.member_ids();
        members.push(newcomer);
        self.rerun(ctx, &session.params, &members)
    }

    fn partition(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        leavers: &[UserId],
    ) -> Box<dyn SuiteRun> {
        let members: Vec<UserId> = session
            .member_ids()
            .into_iter()
            .filter(|u| !leavers.contains(u))
            .collect();
        self.rerun(ctx, &session.params, &members)
    }

    fn merge_newcomers(
        &self,
        ctx: &StepCtx<'_>,
        session: &GroupSession,
        newcomers: &[UserId],
    ) -> Box<dyn SuiteRun> {
        let mut members = session.member_ids();
        members.extend_from_slice(newcomers);
        self.rerun(ctx, &session.params, &members)
    }

    fn merge_groups(
        &self,
        ctx: &StepCtx<'_>,
        host: &GroupSession,
        other: &GroupSession,
    ) -> Box<dyn SuiteRun> {
        let mut members = host.member_ids();
        members.extend(other.member_ids());
        self.rerun(ctx, &host.params, &members)
    }
}

enum BaselineInner {
    AuthBd(AuthBdRun),
    Ssn(SsnRun),
}

struct BaselineRun {
    inner: BaselineInner,
    params: Params,
    gq_keys: Vec<GqSecretKey>,
}

impl SuiteRun for BaselineRun {
    fn pump(&mut self) -> Pump {
        match &mut self.inner {
            BaselineInner::AuthBd(run) => run.pump(),
            BaselineInner::Ssn(run) => run.pump(),
        }
    }

    fn is_done(&self) -> bool {
        match &self.inner {
            BaselineInner::AuthBd(run) => run.is_done(),
            BaselineInner::Ssn(run) => run.is_done(),
        }
    }

    fn partial_counts(&self) -> OpCounts {
        match &self.inner {
            BaselineInner::AuthBd(run) => run.partial_counts(),
            BaselineInner::Ssn(run) => run.partial_counts(),
        }
    }

    fn virtual_elapsed_ms(&self) -> f64 {
        match &self.inner {
            BaselineInner::AuthBd(run) => run.virtual_elapsed_ms(),
            BaselineInner::Ssn(run) => run.virtual_elapsed_ms(),
        }
        .unwrap_or(0.0)
    }

    fn finish(self: Box<Self>) -> SuiteOutcome {
        let (report, session) = match self.inner {
            BaselineInner::AuthBd(run) => run.finish_session(&self.params, &self.gq_keys),
            BaselineInner::Ssn(run) => run.finish_session(&self.params),
        };
        SuiteOutcome {
            reports: report.nodes,
            session,
            gka_runs: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SecurityProfile;
    use egka_energy::Scheme;

    fn pkg() -> &'static Pkg {
        static PKG: OnceLock<Pkg> = OnceLock::new();
        PKG.get_or_init(|| {
            let mut rng = ChaChaRng::seed_from_u64(0x5017e);
            Pkg::setup(&mut rng, SecurityProfile::Toy)
        })
    }

    fn run_to_done(run: &mut dyn SuiteRun) {
        loop {
            match run.pump() {
                Pump::Done => return,
                Pump::Progressed => {}
                other => panic!("suite run cannot {other:?} on a reliable medium"),
            }
        }
    }

    fn ctx<'a>(pkg: &'a Pkg, faults_for: &'a dyn Fn(u64) -> Faults, seed: u64) -> StepCtx<'a> {
        StepCtx {
            pkg,
            seed,
            composable_joins: true,
            faults_for,
        }
    }

    #[test]
    fn every_suite_agrees_end_to_end_with_arbitrary_ids() {
        let pkg = pkg();
        // Deliberately non-contiguous identities: suites must address by
        // ring position, not by id value.
        let members: Vec<UserId> = [7u32, 1000, 3, 42].map(UserId).to_vec();
        let faults_for = |_s: u64| Faults::none();
        for id in SuiteId::ALL {
            let c = ctx(pkg, &faults_for, 0x11 ^ id as u64);
            let mut run = suite(id).initial(&c, pkg.params(), &members);
            run_to_done(run.as_mut());
            let out = run.finish();
            assert_eq!(out.session.member_ids(), members, "{}", id.key());
            assert!(
                out.reports.windows(2).all(|w| w[0].key == w[1].key),
                "{}: keys diverged",
                id.key()
            );
            assert_eq!(out.session.key, out.reports[0].key);
            assert_eq!(out.gka_runs, 1);
        }
    }

    #[test]
    fn instrumented_runs_match_the_closed_form_totals() {
        let pkg = pkg();
        let members: Vec<UserId> = (0..5).map(UserId).collect();
        let faults_for = |_s: u64| Faults::none();
        for id in SuiteId::ALL {
            let s = suite(id);
            let c = ctx(pkg, &faults_for, 0x22 ^ id as u64);
            let mut run = s.initial(&c, pkg.params(), &members);
            run_to_done(run.as_mut());
            let out = run.finish();
            let mut measured = OpCounts::new();
            for node in &out.reports {
                measured.merge(&node.counts);
            }
            let expect = s.initial_total(members.len() as u64);
            assert_eq!(measured.exps(), expect.exps(), "{}", id.key());
            assert_eq!(measured.tx_bits, expect.tx_bits, "{}", id.key());
            assert_eq!(measured.rx_bits, expect.rx_bits, "{}", id.key());
            assert_eq!(measured.msgs_tx, expect.msgs_tx, "{}", id.key());
            for scheme in Scheme::ALL {
                assert_eq!(
                    measured.get(CompOp::SignVerify(scheme)),
                    expect.get(CompOp::SignVerify(scheme)),
                    "{}: {scheme:?} verifies",
                    id.key()
                );
            }
        }
    }

    #[test]
    fn baseline_dynamics_are_full_reruns() {
        let pkg = pkg();
        let members: Vec<UserId> = (10..14).map(UserId).collect();
        let faults_for = |_s: u64| Faults::none();
        let s = suite(SuiteId::Ssn);
        let c = ctx(pkg, &faults_for, 0x33);
        let mut run = s.initial(&c, pkg.params(), &members);
        run_to_done(run.as_mut());
        let session = run.finish().session;

        // Join: the new session covers the newcomer, with a fresh key.
        let c2 = ctx(pkg, &faults_for, 0x34);
        let mut join = s.join_one(&c2, &session, UserId(99));
        run_to_done(join.as_mut());
        let joined = join.finish();
        assert_eq!(joined.session.n(), 5);
        assert!(joined.session.contains(UserId(99)));
        assert_ne!(joined.session.key, session.key);
        assert_eq!(joined.gka_runs, 1, "a baseline join is a full re-run");

        // Partition: survivors only.
        let c3 = ctx(pkg, &faults_for, 0x35);
        let mut part = s.partition(&c3, &joined.session, &[UserId(10), UserId(12)]);
        run_to_done(part.as_mut());
        let parted = part.finish();
        assert_eq!(parted.session.n(), 3);
        assert!(!parted.session.contains(UserId(10)));
        assert_ne!(parted.session.key, joined.session.key);
    }

    #[test]
    fn detached_member_stalls_every_suite() {
        let pkg = pkg();
        let members: Vec<UserId> = (0..4).map(UserId).collect();
        let faults_for = |_s: u64| Faults {
            detached: vec![UserId(2)],
            ..Faults::default()
        };
        for id in SuiteId::ALL {
            let c = ctx(pkg, &faults_for, 0x44 ^ id as u64);
            let mut run = suite(id).initial(&c, pkg.params(), &members);
            for _ in 0..64 {
                if run.pump() == Pump::Stalled {
                    break;
                }
            }
            assert_eq!(run.pump(), Pump::Stalled, "{}", id.key());
            assert!(!run.is_done(), "{}", id.key());
            // The healthy members' transmissions are still chargeable.
            assert!(run.partial_counts().msgs_tx >= 3, "{}", id.key());
        }
    }

    #[test]
    fn proposed_closed_forms_match_the_legacy_cost_model_shapes() {
        // The Suite trait's closed forms are the planner's pricing source;
        // pin the proposed suite's against the role tables directly.
        let s = suite(SuiteId::Proposed);
        let manual = {
            let mut t = roles_total(&proposed_join(7));
            t.add(CompOp::ModExp, 1);
            t.tx_bits += egka_energy::wire::Z_BITS;
            t.rx_bits += egka_energy::wire::Z_BITS * 6;
            t
        };
        assert_eq!(s.join_total(7, true), manual);
        assert_eq!(
            s.partition_total(10, 3, 4),
            roles_total(&proposed_partition(10, 3, 4))
        );
        assert_eq!(s.merge_total(8, 3), roles_total(&proposed_merge(8, 3)));
        let mut batch = s.initial_total(2);
        batch.merge(&roles_total(&proposed_merge(6, 2)));
        assert_eq!(s.batch_join_total(6, 2), batch);
    }

    #[test]
    fn suite_id_keys_round_trip() {
        for id in SuiteId::ALL {
            assert_eq!(SuiteId::from_key(id.key()), Some(id));
        }
        assert_eq!(SuiteId::from_key("nope"), None);
    }
}
