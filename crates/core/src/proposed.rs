//! The paper's proposed ID-based authenticated GKA protocol (§4).
//!
//! Two broadcast rounds over the ring `U_1 … U_n`:
//!
//! ```text
//! Round 1:  m_i  = U_i ‖ z_i ‖ t_i          z_i = g^{r_i},  t_i = τ_i^e
//! Round 2:  m'_i = U_i ‖ X_i ‖ s_i          X_i = (z_{i+1}/z_{i-1})^{r_i}
//!                                           c   = H(T, Z),  s_i = τ_i·S_{U_i}^c
//! Check:    c == H((∏ s_i)^e · (∏ H(U_i))^{−c}, Z)          (eq. (2))
//!           ∏ X_i ≡ 1 (mod p)                               (Lemma 1)
//! Key:      K = g^{r_1 r_2 + … + r_n r_1}                   (eq. (3))
//! ```
//!
//! `U_1` acts as the trusted controller and broadcasts its Round-2 message
//! last. If either check fails, *all members retransmit* (fresh randomness,
//! bounded retries here); [`Fault`] injects the two corruptions the checks
//! are designed to catch.
//!
//! Every node runs on its own state machine over the shared
//! [`egka_net::Medium`]; rounds execute in lockstep with per-round
//! fan-out across threads ([`crate::par`]). Operation counts are recorded
//! into per-node [`Meter`]s with exactly the granularity the paper's cost
//! model prices (Table 1 column 1: 3 exponentiations, 1 GQ signature
//! generation, 1 batch verification).

use egka_bigint::{mod_mul, Ubig};
use egka_energy::complexity::InitialProtocol;
use egka_energy::{CompOp, Meter, OpCounts, Scheme};
use egka_hash::ChaChaRng;
use egka_net::{Endpoint, Medium};
use egka_sig::GqSecretKey;
use rand::SeedableRng;

use crate::bd;
use crate::group::{GroupSession, MemberState};
use crate::ident::UserId;
use crate::par::par_for_each_mut;
use crate::params::Params;
use crate::wire::{kind, Reader, Writer};

/// Fault injection for the retransmission path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Node `node` broadcasts a corrupted `X` on attempt `on_attempt`
    /// (caught by Lemma 1).
    CorruptX {
        /// Ring index of the faulty node.
        node: usize,
        /// Zero-based attempt on which the fault fires.
        on_attempt: u32,
    },
    /// Node `node` broadcasts a corrupted response `s` on attempt
    /// `on_attempt` (caught by the batch verification, eq. (2)).
    CorruptS {
        /// Ring index of the faulty node.
        node: usize,
        /// Zero-based attempt on which the fault fires.
        on_attempt: u32,
    },
}

/// Run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Upper bound on protocol attempts (paper: unbounded "retransmit").
    pub max_attempts: u32,
    /// Optional injected fault.
    pub fault: Option<Fault>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_attempts: 3,
            fault: None,
        }
    }
}

/// Per-node outcome of a protocol run.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The node's identity.
    pub id: UserId,
    /// The derived group key.
    pub key: Ubig,
    /// Instrumented operation and traffic counts.
    pub counts: OpCounts,
}

/// Outcome of a full protocol run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-node reports, in ring order.
    pub nodes: Vec<NodeReport>,
    /// Number of attempts used (1 = no retransmission).
    pub attempts: u32,
}

impl RunReport {
    /// True iff every node derived the same key.
    pub fn keys_agree(&self) -> bool {
        self.nodes.windows(2).all(|w| w[0].key == w[1].key)
    }

    /// The agreed key.
    ///
    /// # Panics
    /// Panics if the keys do not agree.
    pub fn key(&self) -> &Ubig {
        assert!(self.keys_agree(), "group keys diverged");
        &self.nodes[0].key
    }
}

struct Node {
    idx: usize,
    id: UserId,
    ring: Vec<UserId>,
    key: GqSecretKey,
    ep: Endpoint,
    meter: Meter,
    rng: ChaChaRng,
    fault: Option<Fault>,
    // per-attempt state
    share: Option<bd::Share>,
    tau: Ubig,
    t: Ubig,
    zs: Vec<Ubig>,
    ts: Vec<Ubig>,
    xs: Vec<Ubig>,
    ss: Vec<Ubig>,
    challenge: Ubig,
    bind: Vec<u8>,
    derived: Option<Ubig>,
}

/// Runs the proposed protocol for `n = keys.len()` users and returns the
/// per-node reports plus the resulting [`GroupSession`] (input state for
/// the dynamic protocols).
///
/// # Panics
/// Panics if fewer than two keys are supplied, if a fault survives
/// `max_attempts`, or if an internal invariant breaks.
pub fn run(
    params: &Params,
    keys: &[GqSecretKey],
    seed: u64,
    config: RunConfig,
) -> (RunReport, GroupSession) {
    let n = keys.len();
    assert!(n >= 2, "a group needs at least two members");
    // Identities come from the extracted keys (a merged ring's members are
    // not numbered 0..n), positions from slice order.
    let ring: Vec<UserId> = keys
        .iter()
        .map(|k| {
            let b: [u8; 4] = k.id.as_slice().try_into().expect("32-bit identities");
            UserId::from_bytes(b)
        })
        .collect();
    let medium = Medium::new();
    let mut nodes: Vec<Node> = (0..n)
        .map(|i| Node {
            idx: i,
            id: ring[i],
            ring: ring.clone(),
            key: keys[i].clone(),
            ep: medium.join(),
            meter: Meter::new(),
            rng: ChaChaRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            fault: config.fault.filter(|f| match *f {
                Fault::CorruptX { node, .. } | Fault::CorruptS { node, .. } => node == i,
            }),
            share: None,
            tau: Ubig::zero(),
            t: Ubig::zero(),
            zs: vec![Ubig::zero(); n],
            ts: vec![Ubig::zero(); n],
            xs: vec![Ubig::zero(); n],
            ss: vec![Ubig::zero(); n],
            challenge: Ubig::zero(),
            bind: Vec::new(),
            derived: None,
        })
        .collect();

    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(
            attempts <= config.max_attempts,
            "protocol did not converge within {} attempts",
            config.max_attempts
        );
        let attempt = attempts - 1;
        round1(params, &mut nodes, attempt);
        round2(params, &mut nodes, attempt);
        if verify_and_derive(params, &mut nodes) {
            break;
        }
        // Failure detected identically by every node: all retransmit.
    }

    let reports: Vec<NodeReport> = nodes
        .iter()
        .map(|node| {
            let mut counts = node.meter.snapshot();
            let stats = medium.stats(node.ep.id());
            counts.tx_bits = stats.tx_bits;
            counts.rx_bits = stats.rx_bits;
            counts.tx_bits_actual = stats.tx_bits_actual;
            counts.rx_bits_actual = stats.rx_bits_actual;
            counts.msgs_tx = stats.msgs_tx;
            counts.msgs_rx = stats.msgs_rx;
            NodeReport {
                id: node.id,
                key: node.derived.clone().expect("derived after convergence"),
                counts,
            }
        })
        .collect();
    let session = GroupSession {
        params: params.clone(),
        members: nodes
            .iter()
            .map(|node| {
                let share = node.share.as_ref().expect("share set");
                MemberState {
                    id: node.id,
                    gq_key: node.key.clone(),
                    r: share.r.clone(),
                    z: share.z.clone(),
                    tau: node.tau.clone(),
                    t: node.t.clone(),
                }
            })
            .collect(),
        key: reports[0].key.clone(),
    };
    let report = RunReport {
        nodes: reports,
        attempts,
    };
    assert!(report.keys_agree(), "post-verification keys must agree");
    (report, session)
}

/// Round 1: every node samples `(r_i, τ_i)`, broadcasts `m_i = U_i‖z_i‖t_i`
/// and collects everyone else's.
fn round1(params: &Params, nodes: &mut [Node], _attempt: u32) {
    let n = nodes.len();
    // Compute + send (parallel: 2 exponentiations per node).
    par_for_each_mut(nodes, |_, node| {
        let share = bd::round1_share(&mut node.rng, &params.bd);
        node.meter.record(CompOp::ModExp); // z_i = g^{r_i}
        let (tau, t) = params.gq.commit(&mut node.rng);
        // t_i = τ^e is half of the GQ signature generation; the other half
        // (s_i = τ·S^c) happens in Round 2. Charged as one SignGen there.
        let mut w = Writer::new();
        w.put_id(node.id).put_ubig(&share.z).put_ubig(&t);
        node.ep.broadcast(
            kind::ROUND1,
            w.finish(),
            InitialProtocol::ProposedGqBatch.round1_bits(),
        );
        node.zs[node.idx] = share.z.clone();
        node.ts[node.idx] = t.clone();
        node.share = Some(share);
        node.tau = tau;
        node.t = t;
    });
    // Drain: every node reads the other n−1 announcements.
    par_for_each_mut(nodes, |_, node| {
        for _ in 0..n - 1 {
            let pkt = node.ep.recv_kind(kind::ROUND1);
            let mut r = Reader::new(&pkt.payload);
            let id = r.get_id().expect("well-formed round-1 id");
            let z = r.get_ubig().expect("well-formed z");
            let t = r.get_ubig().expect("well-formed t");
            r.expect_end().expect("no trailing bytes");
            let j = node
                .ring
                .iter()
                .position(|&u| u == id)
                .expect("round-1 sender is a ring member");
            node.zs[j] = z;
            node.ts[j] = t;
        }
    });
}

/// Round 2: every node computes `X_i`, the shared challenge `c = H(T, Z)`
/// and its response `s_i`; `U_1` (ring index 0) broadcasts last.
fn round2(params: &Params, nodes: &mut [Node], attempt: u32) {
    let n = nodes.len();
    par_for_each_mut(nodes, |_, node| {
        let share = node.share.as_ref().expect("round 1 done");
        let mut x = bd::round2_x(
            &params.bd,
            &share.r,
            &node.zs[(node.idx + n - 1) % n],
            &node.zs[(node.idx + 1) % n],
        );
        node.meter.record(CompOp::ModExp); // X_i
        node.meter.record(CompOp::ModInv); // 1/z_{i-1} (negligible)
        if let Some(Fault::CorruptX { on_attempt, .. }) = node.fault {
            if on_attempt == attempt {
                x = mod_mul(&x, &params.bd.g, &params.bd.p);
            }
        }
        // Z = ∏ z_i, T = ∏ t_i, c = H(T, Z).
        let z_prod = node
            .zs
            .iter()
            .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &params.bd.p));
        let t_agg = params.gq.aggregate_commitments(&node.ts);
        node.bind = z_prod.to_bytes_be();
        node.challenge = params.gq.shared_challenge(&t_agg, &node.bind);
        node.meter.record(CompOp::Hash);
        let mut s = params.gq.respond(&node.key, &node.tau, &node.challenge);
        // Commit (Round 1) + respond: one GQ signature generation.
        node.meter.record(CompOp::SignGen(Scheme::Gq));
        if let Some(Fault::CorruptS { on_attempt, .. }) = node.fault {
            if on_attempt == attempt {
                s = mod_mul(&s, &Ubig::from_u64(3), &params.gq.n);
            }
        }
        node.xs[node.idx] = x;
        node.ss[node.idx] = s;
    });
    // Send phase with controller-last ordering: everyone except U_1 sends,
    // then U_1 (having heard all m'_j) sends. Rounds are lockstep, so
    // retransmitted attempts reuse the same message kind.
    let send = |node: &Node| {
        let mut w = Writer::new();
        w.put_id(node.id)
            .put_ubig(&node.xs[node.idx])
            .put_ubig(&node.ss[node.idx]);
        node.ep.broadcast(
            kind::ROUND2,
            w.finish(),
            InitialProtocol::ProposedGqBatch.round2_bits(),
        );
    };
    for node in nodes.iter().skip(1) {
        send(node);
    }
    // Controller drains the n−1 messages first (the paper's "U_1 broadcasts
    // last"), then answers.
    {
        let controller = &mut nodes[0];
        for _ in 0..n - 1 {
            let pkt = controller.ep.recv_kind(kind::ROUND2);
            store_round2(controller, &pkt.payload);
        }
        send(&nodes[0]);
    }
    // Everyone else drains the other n−1 messages (their own excluded).
    par_for_each_mut(&mut nodes[1..], |_, node| {
        for _ in 0..n - 1 {
            let pkt = node.ep.recv_kind(kind::ROUND2);
            store_round2(node, &pkt.payload);
        }
    });
}

fn store_round2(node: &mut Node, payload: &[u8]) {
    let mut r = Reader::new(payload);
    let id = r.get_id().expect("well-formed round-2 id");
    let x = r.get_ubig().expect("well-formed X");
    let s = r.get_ubig().expect("well-formed s");
    r.expect_end().expect("no trailing bytes");
    let j = node
        .ring
        .iter()
        .position(|&u| u == id)
        .expect("round-2 sender is a ring member");
    node.xs[j] = x;
    node.ss[j] = s;
}

/// Batch verification (eq. (2)) + Lemma 1 + key derivation. Returns whether
/// the attempt succeeded on every node (the checks are deterministic and
/// identical across nodes, so agreement is structural).
fn verify_and_derive(params: &Params, nodes: &mut [Node]) -> bool {
    let n = nodes.len();
    let ok = std::sync::atomic::AtomicBool::new(true);
    par_for_each_mut(nodes, |_, node| {
        let ids: Vec<Vec<u8>> = node.ring.iter().map(|u| u.to_bytes().to_vec()).collect();
        let id_refs: Vec<&[u8]> = ids.iter().map(|v| v.as_slice()).collect();
        let batch_ok = params
            .gq
            .aggregate_verify(&id_refs, &node.ss, &node.challenge, &node.bind);
        // One priced batch verification, however it came out.
        node.meter.record(CompOp::SignVerify(Scheme::Gq));
        if !batch_ok {
            ok.store(false, std::sync::atomic::Ordering::Relaxed);
            return;
        }
        if !bd::lemma1_holds(&params.bd, &node.xs) {
            ok.store(false, std::sync::atomic::Ordering::Relaxed);
            return;
        }
        let share = node.share.as_ref().expect("round 1 done");
        let ring: Vec<Ubig> = (0..n)
            .map(|j| node.xs[(node.idx + j) % n].clone())
            .collect();
        let key = bd::compute_key(
            &params.bd,
            &share.r,
            &node.zs[(node.idx + n - 1) % n],
            &ring,
        );
        node.meter.record(CompOp::ModExp); // the key exponentiation
        node.derived = Some(key);
    });
    ok.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Pkg, SecurityProfile};

    fn setup(n: u32) -> (Params, Vec<GqSecretKey>) {
        let mut rng = ChaChaRng::seed_from_u64(0x50524f50);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys = pkg.extract_group(n);
        (pkg.params().clone(), keys)
    }

    #[test]
    fn group_of_five_agrees() {
        let (params, keys) = setup(5);
        let (report, session) = run(&params, &keys, 42, RunConfig::default());
        assert!(report.keys_agree());
        assert_eq!(report.attempts, 1);
        assert_eq!(session.members.len(), 5);
        assert_eq!(&session.key, report.key());
    }

    #[test]
    fn two_party_group_works() {
        let (params, keys) = setup(2);
        let (report, _) = run(&params, &keys, 7, RunConfig::default());
        assert!(report.keys_agree());
    }

    #[test]
    fn counts_match_table1_closed_form() {
        let (params, keys) = setup(8);
        let (report, _) = run(&params, &keys, 1, RunConfig::default());
        let expect = InitialProtocol::ProposedGqBatch.per_user_counts(8);
        for node in &report.nodes {
            assert_eq!(node.counts.exps(), expect.exps(), "{}", node.id);
            assert_eq!(
                node.counts.get(CompOp::SignGen(Scheme::Gq)),
                expect.get(CompOp::SignGen(Scheme::Gq))
            );
            assert_eq!(
                node.counts.get(CompOp::SignVerify(Scheme::Gq)),
                expect.get(CompOp::SignVerify(Scheme::Gq))
            );
            assert_eq!(node.counts.msgs_tx, expect.msgs_tx);
            assert_eq!(node.counts.msgs_rx, expect.msgs_rx);
            assert_eq!(node.counts.tx_bits, expect.tx_bits);
            assert_eq!(node.counts.rx_bits, expect.rx_bits);
        }
    }

    #[test]
    fn keys_differ_across_runs() {
        let (params, keys) = setup(3);
        let (r1, _) = run(&params, &keys, 1, RunConfig::default());
        let (r2, _) = run(&params, &keys, 2, RunConfig::default());
        assert_ne!(r1.key(), r2.key());
    }

    #[test]
    fn corrupt_x_triggers_one_retransmission() {
        let (params, keys) = setup(4);
        let config = RunConfig {
            max_attempts: 3,
            fault: Some(Fault::CorruptX {
                node: 2,
                on_attempt: 0,
            }),
        };
        let (report, _) = run(&params, &keys, 9, config);
        assert!(report.keys_agree());
        assert_eq!(report.attempts, 2, "one failed attempt, one clean");
        // Traffic doubles relative to a clean run.
        assert_eq!(report.nodes[0].counts.msgs_tx, 4);
    }

    #[test]
    fn corrupt_s_triggers_one_retransmission() {
        let (params, keys) = setup(4);
        let config = RunConfig {
            max_attempts: 3,
            fault: Some(Fault::CorruptS {
                node: 1,
                on_attempt: 0,
            }),
        };
        let (report, _) = run(&params, &keys, 10, config);
        assert!(report.keys_agree());
        assert_eq!(report.attempts, 2);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn fault_with_no_retry_budget_panics() {
        let (params, keys) = setup(3);
        let config = RunConfig {
            max_attempts: 1,
            fault: Some(Fault::CorruptS {
                node: 1,
                on_attempt: 0,
            }),
        };
        let _ = run(&params, &keys, 11, config);
    }
}
