//! The paper's proposed ID-based authenticated GKA protocol (§4).
//!
//! Two broadcast rounds over the ring `U_1 … U_n`:
//!
//! ```text
//! Round 1:  m_i  = U_i ‖ z_i ‖ t_i          z_i = g^{r_i},  t_i = τ_i^e
//! Round 2:  m'_i = U_i ‖ X_i ‖ s_i          X_i = (z_{i+1}/z_{i-1})^{r_i}
//!                                           c   = H(T, Z),  s_i = τ_i·S_{U_i}^c
//! Check:    c == H((∏ s_i)^e · (∏ H(U_i))^{−c}, Z)          (eq. (2))
//!           ∏ X_i ≡ 1 (mod p)                               (Lemma 1)
//! Key:      K = g^{r_1 r_2 + … + r_n r_1}                   (eq. (3))
//! ```
//!
//! `U_1` acts as the trusted controller and broadcasts its Round-2 message
//! last. If either check fails, *all members retransmit* (fresh randomness,
//! bounded retries here); [`Fault`] injects the two corruptions the checks
//! are designed to catch.
//!
//! Every node is a sans-IO [`crate::machine::RoundMachine`]: the protocol
//! logic never touches an endpoint, it consumes packets and emits outgoing
//! messages from `poll`. [`run`] is the blocking convenience driver (one
//! [`GkaRun`] pumped to completion with per-round thread fan-out); a
//! scheduler that interleaves many groups pumps [`GkaRun`]s directly.
//! Operation counts land in per-node [`Meter`]s with exactly the
//! granularity the paper's cost model prices (Table 1 column 1: 3
//! exponentiations, 1 GQ signature generation, 1 batch verification).

use std::sync::Arc;

use egka_bigint::{mod_mul, Ubig};
use egka_energy::complexity::InitialProtocol;
use egka_energy::{CompOp, Meter, OpCounts, Scheme};
use egka_hash::ChaChaRng;
use egka_net::NetError;
use egka_sig::GqSecretKey;
use rand::SeedableRng;

use crate::bd;
use crate::group::{GroupSession, MemberState};
use crate::ident::{ring_position, UserId};
use crate::machine::{
    two_round_script, Dest, Engine, Execution, Faults, Metered, Outgoing, PhaseOut, Pump,
};
use crate::params::Params;
use crate::wire::{kind, Reader, Writer};

/// Fault injection for the retransmission path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Node `node` broadcasts a corrupted `X` on attempt `on_attempt`
    /// (caught by Lemma 1).
    CorruptX {
        /// Ring index of the faulty node.
        node: usize,
        /// Zero-based attempt on which the fault fires.
        on_attempt: u32,
    },
    /// Node `node` broadcasts a corrupted response `s` on attempt
    /// `on_attempt` (caught by the batch verification, eq. (2)).
    CorruptS {
        /// Ring index of the faulty node.
        node: usize,
        /// Zero-based attempt on which the fault fires.
        on_attempt: u32,
    },
}

/// Run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Upper bound on protocol attempts (paper: unbounded "retransmit").
    pub max_attempts: u32,
    /// Optional injected fault.
    pub fault: Option<Fault>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_attempts: 3,
            fault: None,
        }
    }
}

/// Per-node outcome of a protocol run.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The node's identity.
    pub id: UserId,
    /// The derived group key.
    pub key: Ubig,
    /// Instrumented operation and traffic counts.
    pub counts: OpCounts,
}

/// Outcome of a full protocol run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-node reports, in ring order.
    pub nodes: Vec<NodeReport>,
    /// Number of attempts used (1 = no retransmission).
    pub attempts: u32,
}

impl RunReport {
    /// True iff every node derived the same key.
    pub fn keys_agree(&self) -> bool {
        self.nodes.windows(2).all(|w| w[0].key == w[1].key)
    }

    /// The agreed key.
    ///
    /// # Panics
    /// Panics if the keys do not agree.
    pub fn key(&self) -> &Ubig {
        assert!(self.keys_agree(), "group keys diverged");
        &self.nodes[0].key
    }
}

/// One node's protocol state — everything the lock-step driver's `Node`
/// held except the endpoint, which sans-IO machines never see.
struct NodeState {
    idx: usize,
    id: UserId,
    ring: Vec<UserId>,
    key: GqSecretKey,
    params: Arc<Params>,
    meter: Meter,
    rng: ChaChaRng,
    fault: Option<Fault>,
    max_attempts: u32,
    attempts: u32,
    // per-attempt state
    share: Option<bd::Share>,
    tau: Ubig,
    t: Ubig,
    zs: Vec<Ubig>,
    ts: Vec<Ubig>,
    xs: Vec<Ubig>,
    ss: Vec<Ubig>,
    challenge: Ubig,
    bind: Vec<u8>,
    derived: Option<Ubig>,
}

impl Metered for NodeState {
    fn meter(&self) -> &Meter {
        &self.meter
    }
}

/// Builds node `idx`'s machine. Phases (the shared two-round shape):
/// announce `m_i`, absorb the other `n−1` and derive Round-2 values,
/// exchange `m'_i` controller-last, then verify-and-derive — restarting
/// the whole script on a failed check ("all members retransmit").
fn node_machine(state: NodeState) -> Engine<NodeState> {
    let n = state.ring.len();
    let phases = two_round_script(
        state.idx,
        kind::ROUND1,
        kind::ROUND2,
        n,
        // Round 1: fresh (r_i, τ_i), broadcast m_i = U_i ‖ z_i ‖ t_i.
        move |s: &mut NodeState| {
            s.attempts += 1;
            assert!(
                s.attempts <= s.max_attempts,
                "protocol did not converge within {} attempts",
                s.max_attempts
            );
            let share = bd::round1_share(&mut s.rng, &s.params.bd);
            s.meter.record(CompOp::ModExp); // z_i = g^{r_i}
            let (tau, t) = s.params.gq.commit(&mut s.rng);
            // t_i = τ^e is half of the GQ signature generation; the other
            // half (s_i = τ·S^c) happens in Round 2. Charged as one
            // SignGen there.
            let mut w = Writer::new();
            w.put_id(s.id).put_ubig(&share.z).put_ubig(&t);
            s.zs[s.idx] = share.z.clone();
            s.ts[s.idx] = t.clone();
            s.share = Some(share);
            s.tau = tau;
            s.t = t;
            Outgoing {
                to: Dest::Broadcast,
                kind: kind::ROUND1,
                payload: w.finish(),
                nominal_bits: InitialProtocol::ProposedGqBatch.round1_bits(),
            }
        },
        // Absorb the other announcements, then compute X_i, the shared
        // challenge c = H(T, Z) and the response s_i.
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("well-formed round-1 id");
                let z = r.get_ubig().expect("well-formed z");
                let t = r.get_ubig().expect("well-formed t");
                r.expect_end().expect("no trailing bytes");
                let j = ring_position(&s.ring, id, "round-1");
                s.zs[j] = z;
                s.ts[j] = t;
            }
            let share = s.share.as_ref().expect("round 1 done");
            let mut x = bd::round2_x(
                &s.params.bd,
                &share.r,
                &s.zs[(s.idx + n - 1) % n],
                &s.zs[(s.idx + 1) % n],
            );
            s.meter.record(CompOp::ModExp); // X_i
            s.meter.record(CompOp::ModInv); // 1/z_{i-1} (negligible)
            if let Some(Fault::CorruptX { on_attempt, .. }) = s.fault {
                if on_attempt == s.attempts - 1 {
                    x = mod_mul(&x, &s.params.bd.g, &s.params.bd.p);
                }
            }
            // Z = ∏ z_i, T = ∏ t_i, c = H(T, Z).
            let z_prod =
                s.zs.iter()
                    .fold(Ubig::one(), |acc, z| mod_mul(&acc, z, &s.params.bd.p));
            let t_agg = s.params.gq.aggregate_commitments(&s.ts);
            s.bind = z_prod.to_bytes_be();
            s.challenge = s.params.gq.shared_challenge(&t_agg, &s.bind);
            s.meter.record(CompOp::Hash);
            let mut resp = s.params.gq.respond(&s.key, &s.tau, &s.challenge);
            // Commit (Round 1) + respond: one GQ signature generation.
            s.meter.record(CompOp::SignGen(Scheme::Gq));
            if let Some(Fault::CorruptS { on_attempt, .. }) = s.fault {
                if on_attempt == s.attempts - 1 {
                    resp = mod_mul(&resp, &Ubig::from_u64(3), &s.params.gq.n);
                }
            }
            s.xs[s.idx] = x;
            s.ss[s.idx] = resp;
        },
        // Round-2 broadcast m'_i = U_i ‖ X_i ‖ s_i.
        move |s: &mut NodeState| {
            let mut w = Writer::new();
            w.put_id(s.id).put_ubig(&s.xs[s.idx]).put_ubig(&s.ss[s.idx]);
            Outgoing {
                to: Dest::Broadcast,
                kind: kind::ROUND2,
                payload: w.finish(),
                nominal_bits: InitialProtocol::ProposedGqBatch.round2_bits(),
            }
        },
        // Absorb the other n−1 Round-2 messages.
        move |s: &mut NodeState, pkts| {
            for pkt in pkts {
                let mut r = Reader::new(&pkt.payload);
                let id = r.get_id().expect("well-formed round-2 id");
                let x = r.get_ubig().expect("well-formed X");
                let resp = r.get_ubig().expect("well-formed s");
                r.expect_end().expect("no trailing bytes");
                let j = ring_position(&s.ring, id, "round-2");
                s.xs[j] = x;
                s.ss[j] = resp;
            }
        },
        // Batch verification (eq. (2)) + Lemma 1 + key derivation; every
        // node evaluates the same deterministic checks, so failure is
        // simultaneous and the retransmission restart stays in lock step.
        move |s: &mut NodeState| {
            let ids: Vec<Vec<u8>> = s.ring.iter().map(|u| u.to_bytes().to_vec()).collect();
            let id_refs: Vec<&[u8]> = ids.iter().map(|v| v.as_slice()).collect();
            let batch_ok = s
                .params
                .gq
                .aggregate_verify(&id_refs, &s.ss, &s.challenge, &s.bind);
            // One priced batch verification, however it came out.
            s.meter.record(CompOp::SignVerify(Scheme::Gq));
            if !batch_ok || !bd::lemma1_holds(&s.params.bd, &s.xs) {
                return PhaseOut::Restart;
            }
            let share = s.share.as_ref().expect("round 1 done");
            let ring: Vec<Ubig> = (0..n).map(|j| s.xs[(s.idx + j) % n].clone()).collect();
            let key = bd::compute_key(&s.params.bd, &share.r, &s.zs[(s.idx + n - 1) % n], &ring);
            s.meter.record(CompOp::ModExp); // the key exponentiation
            s.derived = Some(key.clone());
            PhaseOut::Done(key)
        },
    );
    Engine::new(state, phases)
}

/// One in-flight run of the proposed protocol over all `n` members'
/// machines — pump it alongside other groups' runs, or let [`run`] drive
/// it to completion.
pub struct GkaRun {
    exec: Execution<NodeState>,
    params: Params,
    ring: Vec<UserId>,
}

impl GkaRun {
    /// Prepares a run for `n = keys.len()` users with optional fault
    /// injection on the private medium.
    ///
    /// # Panics
    /// Panics if fewer than two keys are supplied.
    pub fn new(
        params: &Params,
        keys: &[GqSecretKey],
        seed: u64,
        config: RunConfig,
        faults: &Faults,
    ) -> Self {
        let n = keys.len();
        assert!(n >= 2, "a group needs at least two members");
        // Identities come from the extracted keys (a merged ring's members
        // are not numbered 0..n), positions from slice order.
        let ring: Vec<UserId> = keys
            .iter()
            .map(|k| {
                let b: [u8; 4] = k.id.as_slice().try_into().expect("32-bit identities");
                UserId::from_bytes(b)
            })
            .collect();
        let shared = Arc::new(params.clone());
        let exec = Execution::new(&ring, faults, |i, _net_ids| {
            node_machine(NodeState {
                idx: i,
                id: ring[i],
                ring: ring.clone(),
                key: keys[i].clone(),
                params: Arc::clone(&shared),
                meter: Meter::new(),
                rng: ChaChaRng::seed_from_u64(
                    seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ),
                fault: config.fault.filter(|f| match *f {
                    Fault::CorruptX { node, .. } | Fault::CorruptS { node, .. } => node == i,
                }),
                max_attempts: config.max_attempts,
                attempts: 0,
                share: None,
                tau: Ubig::zero(),
                t: Ubig::zero(),
                zs: vec![Ubig::zero(); n],
                ts: vec![Ubig::zero(); n],
                xs: vec![Ubig::zero(); n],
                ss: vec![Ubig::zero(); n],
                challenge: Ubig::zero(),
                bind: Vec::new(),
                derived: None,
            })
        });
        GkaRun {
            exec,
            params: params.clone(),
            ring,
        }
    }

    /// One non-blocking scheduling sweep; see [`Execution::pump`].
    pub fn pump(&mut self) -> Pump {
        self.exec.pump()
    }

    /// True iff every member derived the key.
    pub fn is_done(&self) -> bool {
        self.exec.is_done()
    }

    /// Terminal failure, if one surfaced (deadline expiry).
    pub fn failure(&self) -> Option<NetError> {
        self.exec.failure()
    }

    /// Ops + traffic spent so far — the cost a scheduler charges for an
    /// aborted (stalled) attempt.
    pub fn partial_counts(&self) -> OpCounts {
        self.exec.partial_counts()
    }

    /// Virtual milliseconds this run has spent on its radio clock (`None`
    /// off-radio).
    pub fn virtual_elapsed_ms(&self) -> Option<f64> {
        self.exec.virtual_now_ms()
    }

    /// Drives the run to completion with parallel per-node sweeps.
    pub(crate) fn run_to_completion(&mut self) {
        self.exec.run_to_completion();
    }

    /// Assembles the reports and the post-agreement session.
    ///
    /// # Panics
    /// Panics if the run has not finished, or if (impossibly) keys
    /// diverged.
    pub fn finish(self) -> (RunReport, GroupSession) {
        assert!(self.exec.is_done(), "finish() before the run completed");
        let n = self.ring.len();
        let reports: Vec<NodeReport> = (0..n)
            .map(|i| {
                let state = self.exec.machine(i).state();
                NodeReport {
                    id: state.id,
                    key: state.derived.clone().expect("derived after convergence"),
                    counts: self.exec.node_counts(i),
                }
            })
            .collect();
        let session = GroupSession {
            params: self.params.clone(),
            members: (0..n)
                .map(|i| {
                    let state = self.exec.machine(i).state();
                    let share = state.share.as_ref().expect("share set");
                    MemberState {
                        id: state.id,
                        gq_key: state.key.clone(),
                        r: share.r.clone(),
                        z: share.z.clone(),
                        tau: state.tau.clone(),
                        t: state.t.clone(),
                    }
                })
                .collect(),
            key: reports[0].key.clone(),
        };
        let report = RunReport {
            nodes: reports,
            attempts: self.exec.machine(0).state().attempts,
        };
        assert!(report.keys_agree(), "post-verification keys must agree");
        (report, session)
    }
}

/// Runs the proposed protocol for `n = keys.len()` users and returns the
/// per-node reports plus the resulting [`GroupSession`] (input state for
/// the dynamic protocols).
///
/// # Panics
/// Panics if fewer than two keys are supplied, if a fault survives
/// `max_attempts`, or if an internal invariant breaks.
pub fn run(
    params: &Params,
    keys: &[GqSecretKey],
    seed: u64,
    config: RunConfig,
) -> (RunReport, GroupSession) {
    let mut gka = GkaRun::new(params, keys, seed, config, &Faults::none());
    gka.run_to_completion();
    gka.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Pkg, SecurityProfile};

    fn setup(n: u32) -> (Params, Vec<GqSecretKey>) {
        let mut rng = ChaChaRng::seed_from_u64(0x50524f50);
        let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
        let keys = pkg.extract_group(n);
        (pkg.params().clone(), keys)
    }

    #[test]
    fn group_of_five_agrees() {
        let (params, keys) = setup(5);
        let (report, session) = run(&params, &keys, 42, RunConfig::default());
        assert!(report.keys_agree());
        assert_eq!(report.attempts, 1);
        assert_eq!(session.members.len(), 5);
        assert_eq!(&session.key, report.key());
    }

    #[test]
    fn two_party_group_works() {
        let (params, keys) = setup(2);
        let (report, _) = run(&params, &keys, 7, RunConfig::default());
        assert!(report.keys_agree());
    }

    #[test]
    fn counts_match_table1_closed_form() {
        let (params, keys) = setup(8);
        let (report, _) = run(&params, &keys, 1, RunConfig::default());
        let expect = InitialProtocol::ProposedGqBatch.per_user_counts(8);
        for node in &report.nodes {
            assert_eq!(node.counts.exps(), expect.exps(), "{}", node.id);
            assert_eq!(
                node.counts.get(CompOp::SignGen(Scheme::Gq)),
                expect.get(CompOp::SignGen(Scheme::Gq))
            );
            assert_eq!(
                node.counts.get(CompOp::SignVerify(Scheme::Gq)),
                expect.get(CompOp::SignVerify(Scheme::Gq))
            );
            assert_eq!(node.counts.msgs_tx, expect.msgs_tx);
            assert_eq!(node.counts.msgs_rx, expect.msgs_rx);
            assert_eq!(node.counts.tx_bits, expect.tx_bits);
            assert_eq!(node.counts.rx_bits, expect.rx_bits);
        }
    }

    #[test]
    fn keys_differ_across_runs() {
        let (params, keys) = setup(3);
        let (r1, _) = run(&params, &keys, 1, RunConfig::default());
        let (r2, _) = run(&params, &keys, 2, RunConfig::default());
        assert_ne!(r1.key(), r2.key());
    }

    #[test]
    fn corrupt_x_triggers_one_retransmission() {
        let (params, keys) = setup(4);
        let config = RunConfig {
            max_attempts: 3,
            fault: Some(Fault::CorruptX {
                node: 2,
                on_attempt: 0,
            }),
        };
        let (report, _) = run(&params, &keys, 9, config);
        assert!(report.keys_agree());
        assert_eq!(report.attempts, 2, "one failed attempt, one clean");
        // Traffic doubles relative to a clean run.
        assert_eq!(report.nodes[0].counts.msgs_tx, 4);
    }

    #[test]
    fn corrupt_s_triggers_one_retransmission() {
        let (params, keys) = setup(4);
        let config = RunConfig {
            max_attempts: 3,
            fault: Some(Fault::CorruptS {
                node: 1,
                on_attempt: 0,
            }),
        };
        let (report, _) = run(&params, &keys, 10, config);
        assert!(report.keys_agree());
        assert_eq!(report.attempts, 2);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn fault_with_no_retry_budget_panics() {
        let (params, keys) = setup(3);
        let config = RunConfig {
            max_attempts: 1,
            fault: Some(Fault::CorruptS {
                node: 1,
                on_attempt: 0,
            }),
        };
        let _ = run(&params, &keys, 11, config);
    }

    #[test]
    fn detached_member_stalls_the_run_without_blocking_the_caller() {
        let (params, keys) = setup(4);
        let faults = Faults {
            detached: vec![UserId(2)],
            ..Faults::default()
        };
        let mut gka = GkaRun::new(&params, &keys, 5, RunConfig::default(), &faults);
        // Pump until quiescent: never blocks, never completes.
        for _ in 0..32 {
            if gka.pump() == Pump::Stalled {
                break;
            }
        }
        assert_eq!(gka.pump(), Pump::Stalled);
        assert!(!gka.is_done());
        // The healthy members' Round-1 transmissions are still accounted.
        assert!(gka.partial_counts().msgs_tx >= 3);
    }

    #[test]
    fn interleaved_runs_match_dedicated_runs() {
        // Two groups pumped round-robin on one thread derive exactly the
        // keys they derive when run back to back.
        let (params, keys_a) = setup(4);
        let keys_b = keys_a.clone();
        let (ra, _) = run(&params, &keys_a, 77, RunConfig::default());
        let (rb, _) = run(&params, &keys_b, 78, RunConfig::default());

        let mut a = GkaRun::new(&params, &keys_a, 77, RunConfig::default(), &Faults::none());
        let mut b = GkaRun::new(&params, &keys_b, 78, RunConfig::default(), &Faults::none());
        while !(a.is_done() && b.is_done()) {
            a.pump();
            b.pump();
        }
        assert_eq!(a.finish().0.key(), ra.key());
        assert_eq!(b.finish().0.key(), rb.key());
    }
}
