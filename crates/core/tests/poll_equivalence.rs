//! Equivalence of the poll-driven sans-IO engine with the seed's blocking
//! lock-step drivers.
//!
//! Two layers of evidence:
//!
//! 1. **Goldens**: key values and traffic counters captured from the
//!    blocking implementation (commit `9f68242`, before the sans-IO
//!    refactor) for fixed seeds. The machines must reproduce them bit for
//!    bit — same per-node RNG draw order, same wire accounting.
//! 2. **Properties**: for arbitrary `(n, seed)`, the engine's group key
//!    equals an independent oracle that replays the per-node RNG streams
//!    and evaluates the Burmester–Desmedt closed form `K = g^{Σ r_i
//!    r_{i+1}}` directly — and every node's traffic matches the paper's
//!    closed-form counts.

use egka_core::{bd, dynamics, proposed, ssn, Pkg, RunConfig, SecurityProfile, UserId};
use egka_energy::complexity::InitialProtocol;
use egka_hash::ChaChaRng;
use proptest::prelude::*;
use rand::SeedableRng;

fn key_hex(k: &egka_bigint::Ubig) -> String {
    k.to_bytes_be()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<String>()
}

/// Shared toy PKG, same setup seed as the golden capture.
fn pkg() -> &'static Pkg {
    use std::sync::OnceLock;
    static PKG: OnceLock<Pkg> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x50524f50);
        Pkg::setup(&mut rng, SecurityProfile::Toy)
    })
}

#[test]
fn proposed_keys_match_blocking_driver_goldens() {
    // Captured from the seed blocking implementation; see module docs.
    let goldens = [
        (
            2u32,
            7u64,
            "8886a514ad361fa118a1cd73380944296912afb00629fe37c99c8726ad1b0d7d",
        ),
        (
            3,
            1,
            "684a19cb10dbeaba3949453ae485980ca375f9c229f1eace542103ac528e20c8",
        ),
        (
            5,
            42,
            "2fa3cedbb0f1e3e5c0e7c94e6337d687cdaa44cfa692f150bce416b9c287822c",
        ),
        (
            8,
            1,
            "8c4b34ccdd04863be792a94715b0eed12d8c34832f05560992c7a550e0aedf61",
        ),
    ];
    for (n, seed, want) in goldens {
        let keys = pkg().extract_group(n);
        let (report, _) = proposed::run(pkg().params(), &keys, seed, RunConfig::default());
        assert_eq!(key_hex(report.key()), want, "n={n} seed={seed}");
        assert_eq!(report.attempts, 1);
    }
}

#[test]
fn faulted_retransmission_matches_blocking_driver_golden() {
    let keys = pkg().extract_group(4);
    let config = RunConfig {
        max_attempts: 3,
        fault: Some(proposed::Fault::CorruptX {
            node: 2,
            on_attempt: 0,
        }),
    };
    let (report, _) = proposed::run(pkg().params(), &keys, 9, config);
    assert_eq!(
        key_hex(report.key()),
        "185dd2e4c96b126ab5ceb70997b1105fcdfe797c9ce4ebdc071ed019fd6fa373"
    );
    assert_eq!(report.attempts, 2);
}

#[test]
fn ssn_key_matches_blocking_driver_golden() {
    let mut rng = ChaChaRng::seed_from_u64(0x53534e);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let keys = pkg.extract_group(5);
    let report = ssn::run(pkg.params(), &keys, 1);
    assert_eq!(
        key_hex(report.key()),
        "9cff934f1f05c1be4f3163a97022dd63c1ed2bc3778ab00414656ea69c25ed40"
    );
}

#[test]
fn authbd_key_matches_blocking_driver_golden() {
    let mut grng = ChaChaRng::seed_from_u64(0x41424400);
    let g = egka_bigint::gen_schnorr_group(&mut grng, 192, 64);
    let mut rng = ChaChaRng::seed_from_u64(1);
    let kit =
        egka_core::AuthKit::setup_ecdsa(&mut rng, egka_sig::Ecdsa::new(egka_ec::secp160r1()), 5);
    let report = egka_core::authbd::run(&g, &kit, 2);
    assert_eq!(
        key_hex(report.key()),
        "4a1b312d44b98307dfbb99f0d3c5e2b37a77bb8fb0c93066"
    );
}

#[test]
fn dynamics_keys_match_blocking_driver_goldens() {
    let mut rng = ChaChaRng::seed_from_u64(0xd1a_0000 ^ 1);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let keys = pkg.extract_group(5);
    let (_, s0) = proposed::run(pkg.params(), &keys, 11, RunConfig::default());
    let nk = pkg.extract(UserId(5));

    let joined = dynamics::join(&s0, UserId(5), &nk, 99, true);
    assert_eq!(
        key_hex(&joined.session.key),
        "2aa832f5f92d6479522152e747e27d8f67b56007851ef08b751e7bce497a3276"
    );
    let joined_paper = dynamics::join(&s0, UserId(5), &nk, 99, false);
    assert_eq!(joined_paper.session.key, joined.session.key);

    let left = dynamics::leave(&joined.session, 3, 50);
    assert_eq!(
        key_hex(&left.session.key),
        "521feaacaf471cf5c07ca130b0dd9bd8ba56fe539d1aa13ec35d42367fb19d83"
    );

    let part = dynamics::partition(&joined.session, &[1, 4], 52);
    assert_eq!(
        key_hex(&part.session.key),
        "33dd6b8b72be39072d1228dec44d31e6a90f10ae9d23c7522087e2ac48d34398"
    );

    let keys_b: Vec<_> = (20u32..24).map(|i| pkg.extract(UserId(i))).collect();
    let (_, sb) = proposed::run(pkg.params(), &keys_b, 12, RunConfig::default());
    let merged = dynamics::merge(&s0, &sb, 21);
    assert_eq!(
        key_hex(&merged.session.key),
        "4bbfb29a5db1c40b08bc159e96bed6a98939802cfdeeba5bab070766a0a16ef3"
    );
    assert_eq!(merged.reports[0].counts.tx_bits, 6496, "merge U1 tx bits");
    assert_eq!(merged.reports[0].counts.rx_bits, 5408, "merge U1 rx bits");
}

/// Replays exactly the per-node RNG draw sequence of the (machine and
/// blocking) proposed driver and evaluates the BD closed form directly.
fn oracle_key(n: u32, seed: u64) -> egka_bigint::Ubig {
    let params = pkg().params();
    let rs: Vec<egka_bigint::Ubig> = (0..n as u64)
        .map(|i| {
            let mut rng = ChaChaRng::seed_from_u64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let share = bd::round1_share(&mut rng, &params.bd);
            // The driver's second draw (the GQ commitment) does not enter
            // the key; replay it only to mirror the stream.
            let _ = params.gq.commit(&mut rng);
            share.r
        })
        .collect();
    bd::compute_key_reference(&params.bd, &rs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The poll-driven engine derives exactly the key the RNG streams
    /// dictate (no hidden draw reordering anywhere in the machines), and
    /// every node's traffic matches the paper's closed form.
    #[test]
    fn engine_key_and_traffic_match_oracle(n in 2u32..9, seed in any::<u64>()) {
        let keys = pkg().extract_group(n);
        let (report, session) = proposed::run(pkg().params(), &keys, seed, RunConfig::default());
        prop_assert_eq!(report.key(), &oracle_key(n, seed), "n={} seed={}", n, seed);
        prop_assert!(session.invariant_holds());
        let expect = InitialProtocol::ProposedGqBatch.per_user_counts(u64::from(n));
        for node in &report.nodes {
            prop_assert_eq!(node.counts.tx_bits, expect.tx_bits);
            prop_assert_eq!(node.counts.rx_bits, expect.rx_bits);
            prop_assert_eq!(node.counts.msgs_tx, expect.msgs_tx);
            prop_assert_eq!(node.counts.msgs_rx, expect.msgs_rx);
            prop_assert_eq!(node.counts.exps(), expect.exps());
        }
    }

    /// Interleaving many runs on one scheduler thread changes nothing:
    /// same keys, same traffic as dedicated back-to-back runs.
    #[test]
    fn interleaved_scheduling_is_transparent(seed in any::<u64>()) {
        let params = pkg().params();
        let keys_a = pkg().extract_group(4);
        let keys_b = pkg().extract_group(6);
        let (ra, _) = proposed::run(params, &keys_a, seed, RunConfig::default());
        let (rb, _) = proposed::run(params, &keys_b, seed ^ 1, RunConfig::default());

        use egka_core::machine::Faults;
        use egka_core::proposed::GkaRun;
        let mut a = GkaRun::new(params, &keys_a, seed, RunConfig::default(), &Faults::none());
        let mut b = GkaRun::new(params, &keys_b, seed ^ 1, RunConfig::default(), &Faults::none());
        // Deliberately lopsided round-robin: b gets two quanta per sweep.
        while !(a.is_done() && b.is_done()) {
            a.pump();
            b.pump();
            b.pump();
        }
        let (ia, _) = a.finish();
        let (ib, _) = b.finish();
        prop_assert_eq!(ia.key(), ra.key());
        prop_assert_eq!(ib.key(), rb.key());
        for (x, y) in ia.nodes.iter().zip(&ra.nodes) {
            prop_assert_eq!(&x.counts, &y.counts);
        }
        for (x, y) in ib.nodes.iter().zip(&rb.nodes) {
            prop_assert_eq!(&x.counts, &y.counts);
        }
    }
}
