//! # egka — Energy-Efficient ID-based Group Key Agreement
//!
//! A full, from-scratch Rust reproduction of
//!
//! > Chik How Tan and Joseph Chee Ming Teo,
//! > *"Energy-Efficient ID-based Group Key Agreement Protocols for Wireless
//! > Networks"*, IPPS/IPDPS 2006,
//!
//! including every substrate the paper depends on: arbitrary-precision
//! arithmetic, SHA-1/256/512 + HMAC + HKDF + a ChaCha20 CSPRNG, AES with
//! authenticated envelopes, elliptic curves with a Tate pairing, four
//! signature schemes (GQ with batch verification, DSA, ECDSA, SOK),
//! certificates + CA, a simulated wireless broadcast medium, the paper's
//! complete energy cost model, and harnesses that regenerate every table
//! and figure of its evaluation.
//!
//! ## Quick start
//!
//! ```
//! use egka::prelude::*;
//!
//! // The PKG runs Setup (toy sizes keep doctests fast; use
//! // SecurityProfile::Paper or `paper_fixture()` for 1024-bit parameters).
//! let mut rng = ChaChaRng::seed_from_u64(7);
//! let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
//! let keys = pkg.extract_group(5);
//!
//! // Five users run the proposed authenticated GKA over a simulated
//! // broadcast medium: two rounds, one batch verification each.
//! let (report, session) = proposed::run(pkg.params(), &keys, 42, RunConfig::default());
//! assert!(report.keys_agree());
//!
//! // A sixth user joins with three unicast/multicast messages instead of
//! // a full re-run.
//! let new_key = pkg.extract(UserId(5));
//! let joined = dynamics::join(&session, UserId(5), &new_key, 43, true);
//! assert_ne!(joined.session.key, session.key);
//!
//! // Energy per node, exactly as the paper prices it.
//! let counts = &report.nodes[0].counts;
//! let mj = total_energy_mj(
//!     &CpuModel::strongarm_133(),
//!     &Transceiver::wlan_spectrum24(),
//!     counts,
//! );
//! assert!(mj > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`bigint`] | limbed integers, Montgomery, Miller–Rabin, Schnorr groups |
//! | [`hash`] | SHA-1/256/512, HMAC, HKDF, ChaCha20 RNG, full-domain hashes |
//! | [`symmetric`] | AES-128/192/256, CBC/CTR, the `E_K(·)` envelope |
//! | [`ec`] | prime fields, curves, wNAF, supersingular Tate pairing |
//! | [`sig`] | GQ (+ batch), DSA, ECDSA, SOK, certificates, CA |
//! | [`net`] | broadcast medium with per-node bit accounting |
//! | [`energy`] | Tables 2/3 cost models, meters, Tables 1/4/5 closed forms |
//! | [`medium`] | virtual-time radio: link delay, airtime contention, batteries |
//! | [`core`] | the five GKA protocols + Join/Leave/Merge/Partition |
//! | [`store`] | durable group state: checksummed WAL + compacting snapshots |
//! | [`service`] | sharded multi-group key management, epoch-batched rekeying, crash recovery |
//! | [`robust`] | identifiable-abort eviction: blame certificates, quarantine, backoff |
//! | [`trace`] | virtual-clock structured tracing, metrics registry, Chrome-trace/flame export |
//! | [`sim`] | Figure 1 and Table 4/5 harnesses, churn workloads, reports |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use egka_bigint as bigint;
pub use egka_core as core;
pub use egka_ec as ec;
pub use egka_energy as energy;
pub use egka_hash as hash;
pub use egka_medium as medium;
pub use egka_net as net;
pub use egka_robust as robust;
pub use egka_service as service;
pub use egka_sig as sig;
pub use egka_sim as sim;
pub use egka_store as store;
pub use egka_symmetric as symmetric;
pub use egka_trace as trace;

/// The most common imports for working with the reproduction.
pub mod prelude {
    pub use egka_bigint::{SchnorrGroup, Ubig};
    pub use egka_core::{
        authbd, dynamics, proposed, ssn, suite::suite, AuthKit, Fault, Faults, GroupSession,
        Params, Pkg, Pump, RadioSpec, RunConfig, SecurityProfile, Suite, SuiteId, UserId,
    };
    pub use egka_energy::{
        complexity::InitialProtocol, total_energy_mj, CompOp, CpuModel, Meter, OpCounts, Scheme,
        Transceiver,
    };
    pub use egka_hash::ChaChaRng;
    pub use egka_medium::{BatteryBank, RadioProfile};
    pub use egka_robust::{BlameCert, EvictionPolicy, Quarantine};
    pub use egka_service::{
        EpochReport, FileStore, GroupId, HealthReport, KeyService, MemStore, MembershipEvent,
        RecoveryReport, ServiceBuilder, ServiceMetrics, StallCause, StallLedger, StoreConfig,
        SuitePolicy,
    };
    pub use egka_sim::{Figure1Config, Table5Config};
    pub use rand::SeedableRng;
}
