//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with parking_lot's
//! non-poisoning, guard-returning API, over `std::sync`. A poisoned std
//! lock (a panic while held) is transparently recovered, matching
//! parking_lot's "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 1);
    }
}
