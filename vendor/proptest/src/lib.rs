//! Offline shim for `proptest`.
//!
//! Provides the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support);
//! * [`Strategy`] with `prop_map` / `prop_filter`;
//! * `any::<T>()` for integer types and small tuples;
//! * integer range strategies (`2usize..9`, `0u64..=100`);
//! * `proptest::collection::vec` (also reachable as `prop::collection::vec`);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking** and the case stream is a fixed deterministic PRNG seeded
//! from the test's module path and name — every run explores the same
//! cases, so failures are always reproducible (CI-friendly; the seed
//! corpus never drifts).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case production (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection sampling on the top bits to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Creates the deterministic RNG for a named test (used by [`proptest!`]).
pub fn test_rng(name: &str) -> TestRng {
    TestRng::from_name(name)
}

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A recipe for producing values of `Value`.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<T> {
    gen_fn: fn(&mut TestRng) -> T,
}

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> Self {
        ArbitraryStrategy {
            gen_fn: self.gen_fn,
        }
    }
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// The canonical strategy for `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<Self> {
                ArbitraryStrategy { gen_fn: |rng| rng.next_u64() as $t }
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryStrategy<Self> {
        ArbitraryStrategy {
            gen_fn: |rng| rng.next_u64() & 1 == 1,
        }
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary() -> ArbitraryStrategy<Self> {
                ArbitraryStrategy {
                    gen_fn: |rng| ($($t::arbitrary().generate(rng),)+),
                }
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Admissible length ranges for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors of `elem` values with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Module alias so `prop::collection::vec(...)` resolves after a prelude
/// glob import, as with the real crate.
pub mod prop {
    pub use super::collection;
}

/// The common imports.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///
///     /// doc
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..64)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens(max: u64) -> impl Strategy<Value = u64> {
        (0u64..max).prop_filter("even", |v| v % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u64..=5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn map_and_filter_compose(e in evens(100).prop_map(|v| v + 1)) {
            prop_assert!(e % 2 == 1);
            prop_assert_ne!(e, 0);
        }

        #[test]
        fn tuples_generate(t in any::<(u16, u8)>()) {
            let (a, b) = t;
            prop_assert!(u32::from(a) <= u32::from(u16::MAX));
            prop_assert!(u32::from(b) <= u32::from(u8::MAX));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = super::test_rng("x::y");
        let mut b = super::test_rng("x::y");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
