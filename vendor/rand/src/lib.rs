//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *exact subset* of `rand`'s API its crates use: the [`Rng`] /
//! [`SeedableRng`] traits, the fallible [`TryRng`] / [`TryCryptoRng`] pair
//! (implemented by `egka_hash::ChaChaRng`), and [`rngs::SmallRng`].
//!
//! Semantics intentionally mirror upstream where observable:
//! `seed_from_u64` expands the state with SplitMix64, and all generators
//! are deterministic. Nothing here is cryptographic by itself — the
//! workspace's CSPRNG is ChaCha20 in `egka-hash`; `SmallRng` is for
//! test/search workloads only, exactly like upstream's.

#![forbid(unsafe_code)]

use core::convert::Infallible;

/// A fallible random number generator (upstream `rand_core::TryRngCore`
/// shape).
pub trait TryRng {
    /// Error produced on generation failure.
    type Error: core::fmt::Debug;
    /// Next 32 uniformly random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
    /// Next 64 uniformly random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
    /// Fills `dst` with random bytes.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

/// Marker: a [`TryRng`] suitable for cryptographic use.
pub trait TryCryptoRng: TryRng {}

/// An infallible random number generator.
///
/// Blanket-implemented for every [`TryRng`] whose error is [`Infallible`],
/// so `ChaChaRng` and `SmallRng` both satisfy `R: Rng` bounds.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R> Rng for R
where
    R: TryRng<Error = Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => (),
        }
    }
}

/// SplitMix64 step (upstream's `seed_from_u64` expander).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (deterministic,
    /// matching upstream's documented behaviour of being a fixed simple
    /// expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&z[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{Infallible, SeedableRng, TryRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let b: [u8; 8] = seed[8 * i..8 * i + 8].try_into().expect("8-byte chunk");
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0u64; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl TryRng for SmallRng {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
            Ok((self.next() >> 32) as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
            Ok(self.next())
        }

        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
            for chunk in dst.chunks_mut(8) {
                let b = self.next().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn next_u32_varies() {
        let mut rng = SmallRng::seed_from_u64(2);
        let xs: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
