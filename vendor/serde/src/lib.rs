//! Offline shim for `serde`.
//!
//! Nothing in this workspace serializes through serde (datasets render via
//! hand-written CSV/markdown), but types annotate themselves with
//! `#[derive(Serialize, Deserialize)]` so a future swap to the real crate
//! is a manifest change. Here the traits are plain markers and the derives
//! (from the vendored `serde_derive`) emit empty impls.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime-free: the shim never
/// borrows from an input).
pub trait Deserialize {}

#[cfg(test)]
mod tests {
    // The derive macros emit `impl ::serde::...` paths, which cannot
    // resolve from inside this crate itself, so the shim's own test
    // implements the markers manually; derive expansion is covered by
    // every downstream crate that uses `#[derive(Serialize, Deserialize)]`.
    use super::{Deserialize, Serialize};

    struct Plain {
        _x: u32,
    }

    impl Serialize for Plain {}
    impl Deserialize for Plain {}

    fn assert_both<T: Serialize + Deserialize>() {}

    #[test]
    fn marker_traits_are_object_safe_bounds() {
        assert_both::<Plain>();
    }
}
