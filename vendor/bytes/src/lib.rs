//! Offline shim for the `bytes` crate: a cheaply-clonable, immutable byte
//! buffer. Only the subset the workspace uses is provided.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice (copied once; clones share it).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes { data: Arc::from(b) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_share() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").as_ref(), b"xy");
    }

    #[test]
    fn debug_is_printable() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
