//! Offline shim for the `crossbeam` crate, built on `std`:
//!
//! * [`channel`] — MPSC channels with the crossbeam names (`unbounded`,
//!   `Sender`, `Receiver`, `RecvTimeoutError`), wrapping `std::sync::mpsc`
//!   (whose `Sender` has been `Sync` since Rust 1.72, which is all the
//!   workspace needs — no receiver is ever shared);
//! * [`scope`] — scoped threads with crossbeam's `Result`-returning,
//!   closure-takes-a-scope-handle signature, over `std::thread::scope`.

#![forbid(unsafe_code)]

/// Multi-producer channels (crossbeam-channel shim).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors iff the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    ///
    /// Crossbeam receivers are `Sync` (shareable across threads); std's
    /// mpsc receiver is not, so the shim serializes access through a
    /// mutex. Concurrent blocking `recv`s therefore queue instead of
    /// racing — fine for this workspace, where an endpoint is only ever
    /// drained by one thread at a time.
    pub struct Receiver<T> {
        inner: std::sync::Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Blocks for the next value; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.guard().recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv()
        }

        /// Blocks for up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout)
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: std::sync::Mutex::new(rx),
            },
        )
    }
}

/// Handle passed to closures spawned inside a [`scope`]; this shim does not
/// support nested spawning through it (the workspace never nests).
pub struct ScopeHandle {
    _private: (),
}

/// A scope in which threads borrowing the environment can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a [`ScopeHandle`]
    /// (crossbeam's closures take the scope again; callers here ignore it).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&ScopeHandle) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&ScopeHandle { _private: () }))
    }
}

/// Runs `f` with a [`Scope`]; joins all spawned threads before returning.
/// Returns `Err` (like crossbeam) if `f` or any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3];
        let total = std::sync::atomic::AtomicU64::new(0);
        scope(|s| {
            for &x in &data {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 6);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_roundtrip_and_timeout() {
        let (tx, rx) = channel::unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
        assert!(matches!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn channel_iter_drains_after_senders_drop() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
