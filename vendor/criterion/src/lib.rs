//! Offline shim for `criterion`.
//!
//! Provides enough API surface for this workspace's benches to compile and
//! run offline: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated loop (timed batches until a wall-clock budget is
//! spent) reporting mean ns/iter — adequate for relative comparisons, with
//! none of upstream's statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher<'a> {
    budget: Duration,
    result_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Times `routine` until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch-size calibration: aim for ~10 batches.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (self.budget.as_nanos() / 10).max(1);
        let batch = ((per_batch / one.as_nanos().max(1)) as u64).clamp(1, 1 << 20);

        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            spent += t.elapsed();
            iters += batch;
        }
        *self.result_ns = spent.as_nanos() as f64 / iters as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, self.budget, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _parent: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; the shim keeps its time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.budget, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.budget, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(label: &str, budget: Duration, mut f: F) {
    let mut ns = f64::NAN;
    let mut b = Bencher {
        budget,
        result_ns: &mut ns,
    };
    f(&mut b);
    if ns.is_nan() {
        println!("{label:<50} (no measurement)");
    } else if ns >= 1e6 {
        println!("{label:<50} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{label:<50} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{label:<50} {ns:>12.1} ns/iter");
    }
}

/// Declares a group of benchmark functions (upstream-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.bench_function("id", |b| b.iter(|| black_box(7)));
        g.finish();
    }
}
