//! Offline shim for `serde_derive`.
//!
//! The vendored `serde` shim defines `Serialize`/`Deserialize` as *marker*
//! traits (nothing in this workspace actually serializes through serde —
//! report types have hand-written CSV/markdown renderers). These derives
//! therefore only need to emit empty trait impls. Implemented with raw
//! `proc_macro` token scanning (no `syn`/`quote`, which are unavailable
//! offline): find the `struct`/`enum` keyword, take the following ident as
//! the type name. Generic types are not supported (none in this
//! workspace derive serde traits).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the item a derive was applied to.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive shim: could not find a struct/enum name in derive input");
}

/// Derives the shim's marker `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

/// Derives the shim's marker `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
