//! Quickstart: run the paper's proposed authenticated GKA for a small
//! group, join a newcomer, remove a member, and price everything with the
//! paper's energy model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use egka::prelude::*;

fn main() {
    // --- Setup: the PKG generates parameters and extracts ID keys -------
    // Toy sizes keep this instant; SecurityProfile::Paper (or
    // egka::core::paper_fixture()) gives the paper's 1024-bit setting.
    let mut rng = ChaChaRng::seed_from_u64(2006);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let n = 8;
    let keys = pkg.extract_group(n);
    println!(
        "PKG ready: BD group |p| = {} bits, GQ modulus |n| = {} bits",
        pkg.params().bd.p.bit_length(),
        pkg.params().gq.n.bit_length()
    );

    // --- Initial group key agreement (paper §4) -------------------------
    let (report, session) = proposed::run(pkg.params(), &keys, 1, RunConfig::default());
    assert!(report.keys_agree());
    println!(
        "\n{} users agreed on a group key in {} attempt(s)",
        n, report.attempts
    );
    println!("key fingerprint: {:.16}…", session.key.to_hex());

    let cpu = CpuModel::strongarm_133();
    for radio in Transceiver::paper_pair() {
        let mj = total_energy_mj(&cpu, &radio, &report.nodes[0].counts);
        println!("per-node energy on {:<35} {:>8.2} mJ", radio.name, mj);
    }
    let c = &report.nodes[0].counts;
    println!(
        "per-node ops: {} mod-exps, {} GQ sign, {} batch verification, {} msgs rx",
        c.exps(),
        c.get(CompOp::SignGen(Scheme::Gq)),
        c.get(CompOp::SignVerify(Scheme::Gq)),
        c.msgs_rx
    );

    // --- A user joins (paper §7, three messages instead of a re-run) ----
    let newcomer = UserId(100);
    let nk = pkg.extract(newcomer);
    let joined = dynamics::join(&session, newcomer, &nk, 2, true);
    println!(
        "\n{newcomer} joined: group is now {} members",
        joined.session.n()
    );
    let u1_mj = total_energy_mj(
        &cpu,
        &Transceiver::wlan_spectrum24(),
        &joined.reports[0].counts,
    );
    let by_mj = total_energy_mj(
        &cpu,
        &Transceiver::wlan_spectrum24(),
        &joined.reports[2].counts,
    );
    println!("controller spent {u1_mj:.2} mJ; a bystander spent {by_mj:.3} mJ");

    // --- A user leaves (reduced re-key, odd-indexed users refresh) ------
    let after_leave = dynamics::leave(&joined.session, 3, 3);
    println!(
        "\nmember at ring position 3 left: {} remain, {} refreshed exponents",
        after_leave.session.n(),
        after_leave.refreshers.len()
    );
    assert_ne!(after_leave.session.key, joined.session.key);
    println!("forward secrecy: key changed on departure ✓");
}
