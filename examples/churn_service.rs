//! Demo: the sharded key-management service batching churn into rekey
//! epochs.
//!
//! Three groups live under one service. A burst of joins and leaves —
//! including a join+leave of the same pending user and two squads merging
//! — queues up and is collapsed by one epoch tick into the minimal
//! sequence of the paper's §7 dynamics.
//!
//! ```text
//! cargo run --example churn_service
//! ```

use std::sync::Arc;

use egka::prelude::*;

fn main() {
    let mut rng = ChaChaRng::seed_from_u64(0x2006);
    let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
    // The builder façade is the one place service knobs live; the default
    // suite policy runs every group on the paper's proposed scheme.
    let mut svc = KeyService::builder()
        .shards(8)
        .suite_policy(SuitePolicy::Fixed(SuiteId::Proposed))
        .build(Arc::clone(&pkg));

    // Three concurrent groups, hashed across the service's shards.
    svc.create_group(1, &(0..6).map(UserId).collect::<Vec<_>>())
        .unwrap();
    svc.create_group(2, &(10..14).map(UserId).collect::<Vec<_>>())
        .unwrap();
    svc.create_group(3, &(20..23).map(UserId).collect::<Vec<_>>())
        .unwrap();
    println!("service holds {} groups across shards", svc.groups_active());
    for gid in svc.group_ids() {
        println!(
            "  group {gid}: {} members, key {:.12}… (shard {})",
            svc.session(gid).unwrap().n(),
            svc.group_key(gid).unwrap().to_hex(),
            svc.shard_of(gid)
        );
    }

    // A burst of churn queues up between epochs.
    svc.submit(1, MembershipEvent::Join(UserId(100))).unwrap(); // join …
    svc.submit(1, MembershipEvent::Join(UserId(101))).unwrap(); // … another
    svc.submit(1, MembershipEvent::Leave(UserId(2))).unwrap(); // a member leaves
    svc.submit(1, MembershipEvent::Leave(UserId(4))).unwrap(); // and another
    svc.submit(1, MembershipEvent::Join(UserId(102))).unwrap(); // joins…
    svc.submit(1, MembershipEvent::Leave(UserId(102))).unwrap(); // …and cancels
    svc.submit(2, MembershipEvent::MergeWith(3)).unwrap(); // squads merge

    println!("\n7 events queued; one epoch tick coalesces them:");
    let report = svc.tick();
    println!(
        "  applied {} events with {} rekeys (coalesce ratio {:.2})",
        report.events_applied,
        report.rekeys_executed,
        report.coalesce_ratio()
    );
    println!(
        "  epoch energy {:.1} mJ, {} messages on air",
        report.energy_mj, report.traffic.msgs_tx
    );
    if let Some((p50, p95, max)) = report.latency_quantiles() {
        println!("  rekey latency p50 {p50:.1?}, p95 {p95:.1?}, max {max:.1?}");
    }

    // The merged squad lives under the host id; group 3 is gone.
    println!("\nafter the epoch: {} groups live", svc.groups_active());
    for gid in svc.group_ids() {
        let s = svc.session(gid).unwrap();
        assert!(s.invariant_holds());
        println!(
            "  group {gid}: {} members, key {:.12}…",
            s.n(),
            s.key.to_hex()
        );
    }
    assert!(svc.session(3).is_none(), "group 3 merged into group 2");

    let m = svc.metrics();
    println!(
        "\ncumulative: {} events applied, {} rekeys, ratio {:.2}, {:.1} mJ total",
        m.events_applied,
        m.rekeys_executed,
        m.coalesce_ratio(),
        m.energy_mj
    );
}
