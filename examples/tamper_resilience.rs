//! Tamper resilience: what the proposed protocol's two checks actually
//! catch, and what retransmission costs.
//!
//! The batch verification (paper eq. (2)) guards the *signatures* over the
//! Round-1 material; Lemma 1 (`∏ X_i ≡ 1 mod p`) guards the Round-2 values
//! that the signatures do not cover. This example injects both corruptions,
//! shows each check firing, and compares the energy of a clean run against
//! one that needed the paper's "all members retransmit" recovery.
//!
//! ```text
//! cargo run --example tamper_resilience
//! ```

use egka::prelude::*;

fn main() {
    let mut rng = ChaChaRng::seed_from_u64(0xbad);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let keys = pkg.extract_group(6);
    let cpu = CpuModel::strongarm_133();
    let radio = Transceiver::radio_100kbps();

    // Clean run.
    let (clean, _) = proposed::run(pkg.params(), &keys, 10, RunConfig::default());
    let clean_mj = total_energy_mj(&cpu, &radio, &clean.nodes[0].counts);
    println!(
        "clean run: {} attempt(s), {clean_mj:.1} mJ per node",
        clean.attempts
    );

    // A node corrupts its Round-2 share X_i: the signatures all verify
    // (they never covered X), but Lemma 1 fails and everyone retransmits.
    let (lemma_run, _) = proposed::run(
        pkg.params(),
        &keys,
        10,
        RunConfig {
            max_attempts: 3,
            fault: Some(Fault::CorruptX {
                node: 2,
                on_attempt: 0,
            }),
        },
    );
    let lemma_mj = total_energy_mj(&cpu, &radio, &lemma_run.nodes[0].counts);
    println!(
        "corrupted X_i: caught by Lemma 1, {} attempts, {lemma_mj:.1} mJ per node \
         ({:.2}× clean)",
        lemma_run.attempts,
        lemma_mj / clean_mj
    );
    assert!(lemma_run.keys_agree());

    // A node corrupts its response s_i: the aggregate GQ check (eq. (2))
    // fails before any key material is used.
    let (batch_run, _) = proposed::run(
        pkg.params(),
        &keys,
        10,
        RunConfig {
            max_attempts: 3,
            fault: Some(Fault::CorruptS {
                node: 4,
                on_attempt: 0,
            }),
        },
    );
    let batch_mj = total_energy_mj(&cpu, &radio, &batch_run.nodes[0].counts);
    println!(
        "corrupted s_i: caught by batch verification, {} attempts, {batch_mj:.1} mJ per node",
        batch_run.attempts
    );
    assert!(batch_run.keys_agree());

    // Both recoveries converge on the same number of extra attempts: one
    // full protocol re-run — the paper's stated recovery, now with a price.
    println!(
        "\nretransmission premium on the 100 kbps radio: +{:.1} mJ per node per recovery",
        lemma_mj - clean_mj
    );

    // Lossy medium: the envelope/medium machinery also survives packet
    // loss at the transport layer (the paper assumes reliable broadcast;
    // our medium can drop packets to show where that assumption bites).
    println!(
        "\n(see egka_net::Medium::set_loss for loss injection; the GKA drivers\n\
         assume the paper's reliable broadcast and would block on a dropped\n\
         round message — a deliberate fidelity choice documented in DESIGN.md)"
    );
}
