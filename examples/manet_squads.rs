//! MANET scenario: two squads merge, operate, then partition.
//!
//! Two previously independent groups (squads with their own group keys)
//! come into radio range and merge with the paper's three-round Merge
//! protocol; later a squad moves out of range and the survivors run
//! Partition. Energy uses the WLAN profile (vehicle-mounted 802.11).
//!
//! ```text
//! cargo run --example manet_squads
//! ```

use egka::prelude::*;

fn main() {
    let mut rng = ChaChaRng::seed_from_u64(0x303);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let cpu = CpuModel::strongarm_133();
    let radio = Transceiver::wlan_spectrum24();

    // Squad A: 10 vehicles, squad B: 6.
    let keys_a = pkg.extract_group(10);
    let keys_b: Vec<_> = (10..16).map(|i| pkg.extract(UserId(i))).collect();
    let (ra, sa) = proposed::run(pkg.params(), &keys_a, 1, RunConfig::default());
    let (rb, sb) = proposed::run(pkg.params(), &keys_b, 2, RunConfig::default());
    println!("squad A: {} members, key {:.12}…", sa.n(), sa.key.to_hex());
    println!("squad B: {} members, key {:.12}…", sb.n(), sb.key.to_hex());
    let _ = (ra, rb);

    // --- Merge: squads meet --------------------------------------------
    let merged = egka::core::dynamics::merge(&sa, &sb, 3);
    println!("\nmerged into one group of {}", merged.session.n());
    println!(
        "new key {:.12}…  (≠ A's, ≠ B's)",
        merged.session.key.to_hex()
    );
    assert_ne!(merged.session.key, sa.key);
    assert_ne!(merged.session.key, sb.key);
    let ctrl = total_energy_mj(&cpu, &radio, &merged.reports[0].counts);
    let byst = total_energy_mj(&cpu, &radio, &merged.reports[1].counts);
    println!("controller energy {ctrl:.2} mJ, bystander {byst:.3} mJ");
    let total_msgs: u64 = merged.reports.iter().map(|r| r.counts.msgs_tx).sum();
    println!(
        "total messages on air: {total_msgs} (vs 2·(n+m) = {} for a BD re-run)",
        2 * merged.session.n()
    );

    // --- Partition: squad B moves out of range --------------------------
    // B's members sit at ring positions 10..16 of the merged group.
    let leavers: Vec<usize> = (10..16).collect();
    let out = egka::core::dynamics::partition(&merged.session, &leavers, 4);
    println!(
        "\nsquad B lost: {} members remain, {} refreshed exponents",
        out.session.n(),
        out.refreshers.len()
    );
    assert_ne!(out.session.key, merged.session.key);
    println!("departed nodes cannot compute the new key (key changed ✓)");
    let odd = total_energy_mj(&cpu, &radio, &out.reports[out.refreshers[0]].counts);
    println!("surviving refresher spent {odd:.2} mJ");

    // --- The survivors keep operating: a straggler rejoins --------------
    let straggler = UserId(10);
    let joined =
        egka::core::dynamics::join(&out.session, straggler, &pkg.extract(straggler), 5, true);
    println!(
        "\nstraggler {straggler} re-joined: {} members, fresh key {:.12}…",
        joined.session.n(),
        joined.session.key.to_hex()
    );
    println!("backward secrecy: rejoining node never saw the interim key ✓");
}
