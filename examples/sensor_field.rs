//! Sensor-field scenario: a battery budget under churn.
//!
//! A field of sensor nodes (133 MHz StrongARM + 100 kbps radio — the
//! paper's low-power profile) keeps a shared group key while nodes join
//! and fail over a day of operation. The example compares the cumulative
//! per-node energy of (a) the paper's dynamic protocols vs (b) re-running
//! authenticated BD for every membership change, and translates both into
//! battery drain.
//!
//! The initial deployment's GKA is executed **over the virtual-time
//! 100 kbps medium** (`egka-medium`): the channel serializes every
//! broadcast at 100 kbps, links add jitter, and each mote's battery is
//! debited per bit and per modular operation — so the time-to-key is
//! printed in simulated radio milliseconds, not host time.
//!
//! ```text
//! cargo run --example sensor_field
//! ```

use egka::prelude::*;
use egka_core::proposed::GkaRun;
use egka_energy::complexity::{bd_reexec, DynamicEvent};

/// A pair of AA cells ≈ 2 × 1.5 V × 2500 mAh ≈ 27 kJ usable.
const BATTERY_J: f64 = 27_000.0;

fn main() {
    let mut rng = ChaChaRng::seed_from_u64(0x5e150);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let cpu = CpuModel::strongarm_133();
    let radio = Transceiver::radio_100kbps();

    // Initial deployment: 16 motes agree on a key over the *virtual-time*
    // 100 kbps medium, each drawing from a fresh pair of AA cells.
    let n0 = 16;
    let keys = pkg.extract_group(64);
    let bank = BatteryBank::new(BATTERY_J * 1e6);
    let faults = Faults {
        radio: Some(RadioSpec {
            profile: RadioProfile::sensor_100kbps(),
            seed: 0xf1e1d,
            bank: Some(bank.clone()),
        }),
        ..Faults::default()
    };
    let mut gka = GkaRun::new(pkg.params(), &keys[..n0], 1, RunConfig::default(), &faults);
    loop {
        match gka.pump() {
            Pump::Progressed => {}
            Pump::Done => break,
            other => panic!("deployment GKA must complete, got {other:?}"),
        }
    }
    let air_ms = gka.virtual_elapsed_ms().expect("radio clock");
    let (report, mut session) = gka.finish();
    let initial_mj = total_energy_mj(&cpu, &radio, &report.nodes[0].counts);
    // `extract_group` hands out identities U0..U15 in order.
    let drawn_uj: f64 = (0..n0 as u32).map(|u| bank.spent_uj(u)).sum();
    println!(
        "deployment: {n0} motes agree on a key in {air_ms:.0} virtual ms on the \
         100 kbps channel\n            {initial_mj:.1} mJ per mote (priced); \
         {:.1} mJ drawn from the field's batteries\n",
        drawn_uj / 1000.0
    );

    // A day of churn: nodes join (new deployments) and die (battery/defect).
    // Track the busiest surviving node's cumulative energy.
    let mut ours_mj = initial_mj;
    let mut bd_mj = initial_mj;
    let mut next_id = n0 as u32;
    let mut events = 0u32;
    println!(
        "{:<8}{:<10}{:<14}{:<16}{:<16}",
        "hour", "event", "group size", "ours (mJ)", "BD re-run (mJ)"
    );
    for hour in 0..24u32 {
        let event_seed = 0x1000 + hour as u64;
        if hour % 3 == 0 {
            // A fresh mote is added to the field.
            let id = UserId(next_id);
            next_id += 1;
            let nk = pkg.extract(id);
            let out = egka::core::dynamics::join(&session, id, &nk, event_seed, true);
            // The busiest returning role in a Join is the sponsor U_n.
            let sponsor = &out.reports[session.n() - 1].counts;
            ours_mj += total_energy_mj(&cpu, &radio, sponsor);
            let bd = &bd_reexec(DynamicEvent::Join, session.n() as u64, 2, 2)[0].counts;
            bd_mj += total_energy_mj(&cpu, &radio, bd);
            session = out.session;
            events += 1;
            println!(
                "{:<8}{:<10}{:<14}{:<16.1}{:<16.1}",
                hour,
                "join",
                session.n(),
                ours_mj,
                bd_mj
            );
        } else if hour % 7 == 5 && session.n() > 6 {
            // A mote's battery dies.
            let out = egka::core::dynamics::leave(&session, session.n() / 2, event_seed);
            let odd = &out.reports[out.refreshers[0]].counts;
            ours_mj += total_energy_mj(&cpu, &radio, odd);
            let bd = &bd_reexec(DynamicEvent::Leave, session.n() as u64, 2, 2)[0].counts;
            bd_mj += total_energy_mj(&cpu, &radio, bd);
            session = out.session;
            events += 1;
            println!(
                "{:<8}{:<10}{:<14}{:<16.1}{:<16.1}",
                hour,
                "leave",
                session.n(),
                ours_mj,
                bd_mj
            );
        }
    }

    println!("\nafter {events} membership events:");
    println!(
        "  dynamic protocols: {ours_mj:>10.1} mJ  ({:.4}% of a AA pair)",
        ours_mj / 10.0 / BATTERY_J
    );
    println!(
        "  BD re-execution:   {bd_mj:>10.1} mJ  ({:.4}% of a AA pair)",
        bd_mj / 10.0 / BATTERY_J
    );
    println!("  advantage: {:.1}× less re-keying energy", bd_mj / ours_mj);
    let keying_budget = BATTERY_J * 0.01 * 1000.0; // 1% of the battery, in mJ
    println!(
        "  with 1% of the battery budgeted for re-keying, a mote survives\n  \
         ~{:.0} events under our protocols vs ~{:.0} under BD re-execution",
        keying_budget / (ours_mj / events as f64),
        keying_budget / (bd_mj / events as f64)
    );
}
